"""Decl-grain parse elision: AST grafting from a fragment cache.

The delta wire (:mod:`repro.core.parallel`) ships a candidate as per-
declaration text blocks, yet the worker still re-parses the *whole*
reassembled unit per job — ~9 ms against ~51 µs of splicing — because
whole-unit caching almost never hits: candidates are rarely byte-
identical even when nine of their ten declarations are.  This module
caches parses at the same grain the wire (and the PR 3 fingerprints)
already use: one **declaration block** at a time.

A cached entry is a :class:`DeclTemplate` — the block parsed as a
standalone mini-unit with the node-uid counter reset to 1 and source
lines starting at 1, so every template is position-independent.
Reconstructing a unit (:func:`graft_unit`) walks the blocks in unit
order, clones each template (:func:`clone_template_decl` shares the
frozen ``CType`` values and copies only the mutable nodes), and remaps
the clone into place (:func:`offset_node` adds the uid and line bases
accumulated from the preceding blocks).  Only blocks without a cached
template — in steady state exactly the one or two declarations the
candidate edited — are actually parsed.

Uid-canonicalization contract
-----------------------------

The grafted unit must be **bit-identical** to ``parse(render(unit))``
under the worker's uid-counter reset: same uids, same lines/columns,
same fingerprints, same render, same diagnostics order, same evalcache
keys.  Two properties of the parser make that reachable:

* uids are assigned in construction order during recursive descent, so
  the uids consumed while parsing one declaration form a contiguous
  range — **including** uids of discarded nodes (a folded constant
  array size is parsed, consumes a uid, and is then dropped), which is
  why a template records its *uid span* (counter consumption, measured
  as the mini-unit wrapper's uid minus one), never a node count;
* the outermost declaration node is constructed last in its range, so
  spans are stable and the final unit's wrapper uid is
  ``total_span + 1`` exactly as in a full parse (the counter is left
  at ``total_span + 2`` either way).

Environment addressing
----------------------

A block's parse depends on the typedef/struct environment accumulated
by the declarations before it, so templates are content-addressed by
``(block digest, environment digest)``.  The environment digest
advances only when a declaration actually changes the environment
(typedefs, struct definitions, forward-referenced struct placeholders
— recorded on the template as *env updates* at mini-parse time), which
keeps the addressing self-validating: a candidate that edits a typedef
re-keys every downstream block automatically, while reordering two
functions leaves every key intact.

``REPRO_AST_GRAFT`` selects the mode (the parent stamps it onto every
job, so workers forked before an env change still mirror the parent):

* ``1``/``on`` (default) — graft delta jobs, full-parse everything else;
* ``0``/``off`` — escape hatch: every job full-parses as before;
* ``cross`` — graft **and** full-parse every job, asserting node-exact
  equality (:class:`GraftMismatch` on divergence).

Parent-side reuse
-----------------

:func:`cow_clone_unit` applies the same decl-grain idea to the parent's
``edits/base.cloned_unit``: an edit that declares its dirty set shares
the clean declaration subtrees by reference and deep-copies only the
dirty ones (plus the unit ``__dict__`` residue a full ``clone()`` would
produce).  The safety argument is exactly the one fingerprint
inheritance already rests on: an edit mutating a declaration outside
its declared dirty set was already a correctness bug before any
sharing existed, and ``REPRO_INCREMENTAL=cross`` catches it.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import itertools
import os
import re
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from . import nodes as N
from . import typesys as T
from .lexer import tokenize
from .parser import Parser, parse
from .printer import render_unit_from_blocks

#: Environment variable selecting the graft mode.
GRAFT_ENV = "REPRO_AST_GRAFT"

MODES = ("on", "off", "cross")

#: Template-cache capacity.  A template holds one parsed declaration;
#: a search touches a few dozen distinct (block, environment) pairs per
#: subject, so — like the rendered-block cache it mirrors — the bound
#: only matters to long-lived (server-style) worker processes.
_MAX_TEMPLATES = 4096

#: Seed of the environment-digest chain (an empty typedef/struct env).
_ENV_SEED = hashlib.sha256(b"repro-graft-env:1").digest()


def graft_mode() -> str:
    """Current graft mode: ``"on"``, ``"off"`` or ``"cross"``.

    Read from :data:`GRAFT_ENV` on every call so benchmarks and tests
    can flip it without re-importing; job producers stamp the resolved
    mode onto the wire so workers never consult their own environment.
    """
    raw = os.environ.get(GRAFT_ENV, "1").strip().lower()
    if raw in ("0", "off", "false", "no"):
        return "off"
    if raw == "cross":
        return "cross"
    return "on"


class GraftMismatch(AssertionError):
    """``cross`` mode found a grafted unit that differs from a full
    parse of the same blocks — a uid-span, environment-addressing or
    remap bug."""


class GraftUnsupported(Exception):
    """A block the graft path cannot (or should not) handle — the
    caller falls back to a plain full parse, which is always correct."""


# --------------------------------------------------------------------------
# Decl templates
# --------------------------------------------------------------------------


class DeclTemplate:
    """One declaration block, parsed at relative coordinates.

    ``decl`` holds uids ``1..uid_span`` (minus any consumed by
    discarded nodes) and lines ``1..line_count``; ``env_updates``
    records how parsing the block changed the typedef/struct
    environment, so a cache hit can replay the change without parsing.
    """

    __slots__ = ("decl", "uid_span", "line_count", "unit_loc", "env_updates")

    def __init__(
        self,
        decl: N.Decl,
        uid_span: int,
        line_count: int,
        unit_loc: Tuple[int, int],
        env_updates: Tuple[Tuple[str, str, object], ...],
    ) -> None:
        self.decl = decl
        self.uid_span = uid_span
        self.line_count = line_count
        self.unit_loc = unit_loc
        self.env_updates = env_updates


_TEMPLATES: "OrderedDict[Tuple[bytes, bytes], DeclTemplate]" = OrderedDict()
_TEMPLATE_STATS = {"hits": 0, "misses": 0, "warmed": 0, "hole_hits": 0}


def decl_cache_stats() -> Dict[str, int]:
    """This process's decl-template cache counters (tests, debugging)."""
    return dict(_TEMPLATE_STATS)


def clear_decl_templates() -> None:
    """Drop every cached template and reset the counters (tests)."""
    _TEMPLATES.clear()
    _HOLE_FAMILIES.clear()
    for key in _TEMPLATE_STATS:
        _TEMPLATE_STATS[key] = 0


def _remember_template(key: Tuple[bytes, bytes], template: DeclTemplate) -> None:
    _TEMPLATES[key] = template
    _TEMPLATES.move_to_end(key)
    while len(_TEMPLATES) > _MAX_TEMPLATES:
        _TEMPLATES.popitem(last=False)


def _advance_env(digest: bytes, updates: Sequence[Tuple[str, str, object]]) -> bytes:
    """Fold a declaration's environment updates into the running digest.

    Called only for non-empty updates: declarations that leave the
    environment alone must not perturb the chain, so inserting or
    reordering plain functions never re-keys unrelated blocks.
    """
    h = hashlib.sha256(digest)
    for kind, name, value in updates:
        # CTypes are frozen dataclasses; their default repr covers every
        # field recursively, so repr() is a canonical serialization
        # (the same argument fingerprint.py makes).
        h.update(f"{kind}:{name}={value!r};".encode())
    return h.digest()


def _parse_template(
    block: str,
    typedefs: Dict[str, T.CType],
    structs: Dict[str, T.StructType],
) -> DeclTemplate:
    """Mini-parse *block* as a standalone unit at relative coordinates.

    The parser is seeded with copies of the accumulated environment (a
    parse mutates its dicts); the diff against the seeds — by object
    identity, which is deterministic for a deterministic parser — is
    recorded as the template's env updates.
    """
    parser = Parser(tokenize(block))
    parser.typedefs = dict(typedefs)
    parser.structs = dict(structs)
    N._uid_counter = itertools.count(1)
    unit = parser.parse_translation_unit()
    if len(unit.decls) != 1:
        raise GraftUnsupported(
            f"block parsed to {len(unit.decls)} declarations, expected 1"
        )
    updates: List[Tuple[str, str, object]] = []
    for name, value in parser.typedefs.items():
        if typedefs.get(name) is not value:
            updates.append(("typedef", name, value))
    for tag, value in parser.structs.items():
        if structs.get(tag) is not value:
            updates.append(("struct", tag, value))
    return DeclTemplate(
        decl=unit.decls[0],
        uid_span=unit.uid - 1,
        line_count=block.count("\n") + 1,
        unit_loc=(unit.line, unit.col),
        env_updates=tuple(updates),
    )


# --------------------------------------------------------------------------
# Hole templates: decl structure modulo integer literals
# --------------------------------------------------------------------------
#
# Repair searches ladder parameters: ``array_static(buf, 512)`` and
# ``array_static(buf, 1024)`` produce dirty blocks that differ in one
# integer literal, yet each is novel *content* and misses the exact
# template tier.  The hole tier caches the parse of the *shape* — the
# block with every plain decimal integer literal replaced by a hole —
# and rebuilds a variant by patching the cached AST: new ``IntLit``
# value/text, pragma text re-derived from the variant line, and a
# uniform column shift for every node to the right of a hole whose
# literal width changed.
#
# Substitution is **proof-gated**, never assumed: a hole is trusted
# only after a full parse (that a cache miss paid for anyway) was
# compared node-for-node against the substitution that would have
# replaced it.  Literals whose value changes parse *structure* —
# array dimensions folded into ``CType``\ s, VLA sizes, anything
# without a literal-addressed AST node — fail that comparison and stay
# unproven forever, so the tier falls back to a real parse for them.

#: A plain decimal integer literal: no hex/octal prefix, no ``u``/``l``
#: suffix, not a float fragment.  Anything else stays verbatim in the
#: normalized shape (differing there simply keys a different family).
_INT_LIT = re.compile(r"(?<![\w.])\d+(?![\w.])")

#: Hole-family cache bound (families are one decl plus hole metadata).
_MAX_FAMILIES = 1024


class _Hole:
    """One literal site in a family's base block."""

    __slots__ = ("line", "col", "text", "kind", "proven")

    def __init__(self, line: int, col: int, text: str) -> None:
        self.line = line
        self.col = col
        self.text = text
        #: ``"int"`` (an IntLit node sits at the literal's loc),
        #: ``"pragma"`` (the literal lives inside a Pragma's raw text),
        #: or ``"dim"`` (an array bound baked into a declarator's
        #: CType); assigned at proof time, ``None`` until then.
        self.kind: Optional[str] = None
        self.proven = False


class _HoleFamily:
    """A decl shape: the base member's template plus its literal sites."""

    __slots__ = ("template", "holes")

    def __init__(self, template: DeclTemplate, holes: List[_Hole]) -> None:
        self.template = template
        self.holes = holes


_HOLE_FAMILIES: "OrderedDict[Tuple[bytes, bytes], _HoleFamily]" = OrderedDict()


def _block_holes(block: str) -> Tuple[str, List[_Hole]]:
    """The normalized shape of *block* and its literal sites (1-based
    line/col, matching the lexer's token coordinates)."""
    holes: List[_Hole] = []
    for m in _INT_LIT.finditer(block):
        start = m.start()
        line_start = block.rfind("\n", 0, start) + 1
        holes.append(
            _Hole(
                line=block.count("\n", 0, start) + 1,
                col=start - line_start + 1,
                text=m.group(),
            )
        )
    return _INT_LIT.sub("#", block), holes


def _hole_key(block: str, env_digest: bytes) -> Tuple[Tuple[bytes, bytes], List[_Hole]]:
    shape, holes = _block_holes(block)
    return (hashlib.sha256(shape.encode()).digest(), env_digest), holes


def _pragma_payload(line_text: str) -> Optional[str]:
    """What the lexer stores for a ``#pragma`` line: the rest of the
    line after the directive word, stripped (mirrors
    ``Lexer._directive``)."""
    stripped = line_text.lstrip()
    if not stripped.startswith("#"):
        return None
    body = stripped[1:]
    i = 0
    while i < len(body) and body[i].isalpha():
        i += 1
    if body[:i] != "pragma":
        return None
    return body[i:].strip()


def _dim_slot_lines(decl: N.Node) -> Dict[int, List[int]]:
    """Literal array bounds per source line, in declarator walk order.

    A bound like ``int buf[16]`` lives inside the declarator's frozen
    ``ArrayType`` — there is no IntLit node at the literal's location —
    so these are collected separately as positional "dim slots".
    Nested dims flatten outer-first, matching their left-to-right
    render order."""
    slots: Dict[int, List[int]] = {}
    for node in decl.walk():
        if isinstance(node, (N.VarDecl, N.ParamDecl)):
            ctype = node.type
            while isinstance(ctype, T.ArrayType):
                if isinstance(ctype.size, int):
                    slots.setdefault(node.line, []).append(ctype.size)
                ctype = ctype.elem
    return slots


def _rebuild_dims(ctype: T.CType, sizes: "itertools.chain") -> T.CType:
    """Copy an ArrayType chain, replacing literal bounds outer-first
    from *sizes* (element types and non-literal bounds are shared)."""
    if not isinstance(ctype, T.ArrayType):
        return ctype
    size = next(sizes) if isinstance(ctype.size, int) else ctype.size
    return dataclasses.replace(
        ctype, elem=_rebuild_dims(ctype.elem, sizes), size=size
    )


def _substitute_family(
    family: _HoleFamily, block: str, holes_new: List[_Hole]
) -> Optional[DeclTemplate]:
    """Rebuild *block*'s template from its family without parsing.

    Returns None unless every changed hole is proven; any inconsistency
    (missing node, unparseable literal) also returns None and the
    caller falls back to a real parse.
    """
    base = family.holes
    if len(base) != len(holes_new):
        return None
    changed = [
        i for i in range(len(base)) if base[i].text != holes_new[i].text
    ]
    if not changed:
        return None  # exact-tier territory; nothing to substitute
    if any(not base[i].proven for i in changed):
        return None
    if family.template.env_updates:
        return None
    try:
        decl = clone_template_decl(family.template.decl)
        int_nodes: Dict[Tuple[int, int], N.Node] = {}
        pragma_nodes: Dict[int, N.Node] = {}
        for node in decl.walk():
            if isinstance(node, N.IntLit):
                int_nodes[(node.line, node.col)] = node
            elif isinstance(node, N.Pragma):
                pragma_nodes[node.line] = node
        lines: Optional[List[str]] = None
        col_shifts: Dict[int, List[Tuple[int, int]]] = {}
        dim_lines: Set[int] = set()
        for i in changed:
            hole, new = base[i], holes_new[i]
            if hole.kind == "int":
                node = int_nodes.get((hole.line, hole.col))
                if node is None or node.text != hole.text:
                    return None
                node.value = int(new.text, 0)
                node.text = new.text
                delta = len(new.text) - len(hole.text)
                if delta:
                    col_shifts.setdefault(hole.line, []).append(
                        (hole.col, delta)
                    )
            elif hole.kind == "pragma":
                node = pragma_nodes.get(hole.line)
                if node is None:
                    return None
                if lines is None:
                    lines = block.split("\n")
                payload = _pragma_payload(lines[hole.line - 1])
                if payload is None:
                    return None
                node.text = payload
            elif hole.kind == "dim":
                int(new.text, 0)  # unparseable literal -> fall back
                dim_lines.add(hole.line)
                delta = len(new.text) - len(hole.text)
                if delta:
                    col_shifts.setdefault(hole.line, []).append(
                        (hole.col, delta)
                    )
            else:
                return None
        slot_map = _dim_slot_lines(decl) if dim_lines else {}
        for line in dim_lines:
            # Positional mapping: the line's dim holes (col order) are
            # its dim slots (walk order), verified against the base
            # texts in full before any replacement.
            pairs = [
                (base[j], holes_new[j])
                for j in range(len(base))
                if base[j].kind == "dim" and base[j].line == line
            ]
            slot_nodes = [
                node
                for node in decl.walk()
                if isinstance(node, (N.VarDecl, N.ParamDecl))
                and node.line == line
                and isinstance(node.type, T.ArrayType)
            ]
            slots = slot_map.get(line, [])
            if len(slots) != len(pairs):
                return None
            if any(
                int(b.text, 0) != size for (b, _), size in zip(pairs, slots)
            ):
                return None
            sizes = iter([int(n.text, 0) for _, n in pairs])
            for node in slot_nodes:
                node.type = _rebuild_dims(node.type, sizes)
            if next(sizes, None) is not None:
                return None
        if col_shifts:
            for node in decl.walk():
                shifts = col_shifts.get(node.line)
                if shifts:
                    node.col += sum(d for c, d in shifts if c < node.col)
    except Exception:
        return None
    return DeclTemplate(
        decl=decl,
        uid_span=family.template.uid_span,
        line_count=family.template.line_count,
        unit_loc=family.template.unit_loc,
        env_updates=(),
    )


def _register_hole_member(
    key: Tuple[bytes, bytes],
    holes: List[_Hole],
    block: str,
    template: DeclTemplate,
) -> None:
    """Fold a freshly *parsed* member into the hole tier.

    First member of a shape becomes the family base.  Later members
    attempt the substitution their parse makes verifiable: if patching
    the base reproduces the parsed template node-for-node, every hole
    that differed is proven and future members changing only those
    holes skip the parse entirely.  The comparison uses the parse the
    cache miss already paid for — proof never costs an extra parse.
    """
    if template.env_updates:
        return
    family = _HOLE_FAMILIES.get(key)
    if family is None:
        if holes:
            _HOLE_FAMILIES[key] = _HoleFamily(template, holes)
            _HOLE_FAMILIES.move_to_end(key)
            while len(_HOLE_FAMILIES) > _MAX_FAMILIES:
                _HOLE_FAMILIES.popitem(last=False)
        return
    _HOLE_FAMILIES.move_to_end(key)
    base = family.holes
    if len(base) != len(holes):
        return
    changed = [i for i in range(len(base)) if base[i].text != holes[i].text]
    if not changed or all(base[i].proven for i in changed):
        return
    # Classify unproven changed holes against the base decl, then let
    # the already-parsed template arbitrate the substitution.
    int_locs = set()
    pragma_lines = set()
    for node in family.template.decl.walk():
        if isinstance(node, N.IntLit):
            int_locs.add((node.line, node.col, node.text))
        elif isinstance(node, N.Pragma):
            pragma_lines.add(node.line)
    leftover: Dict[int, List[_Hole]] = {}
    for hole in base:
        if hole.kind is not None:
            continue
        if (hole.line, hole.col, hole.text) in int_locs:
            hole.kind = "int"
        elif hole.line in pragma_lines:
            hole.kind = "pragma"
        else:
            leftover.setdefault(hole.line, []).append(hole)
    # A line's leftover literals are its array bounds iff they match the
    # line's dim slots positionally and in full — anything extra (say a
    # digit inside a string) breaks the sequence and nothing classifies.
    if leftover:
        dim_slots = _dim_slot_lines(family.template.decl)
        for line, candidates in leftover.items():
            slots = dim_slots.get(line)
            if slots is None or len(slots) != len(candidates):
                continue
            try:
                values = [int(h.text, 0) for h in candidates]
            except ValueError:
                continue
            if values == slots:
                for hole in candidates:
                    hole.kind = "dim"
    was_proven = [base[i].proven for i in changed]
    for i in changed:
        base[i].proven = True
    candidate = _substitute_family(family, block, holes)
    if (
        candidate is not None
        and candidate.decl == template.decl
        and candidate.uid_span == template.uid_span
        and candidate.line_count == template.line_count
    ):
        return  # substitution reproduces the parse: holes stay proven
    for i, prior in zip(changed, was_proven):
        base[i].proven = prior


# --------------------------------------------------------------------------
# Clone and remap
# --------------------------------------------------------------------------


def clone_template_decl(node: N.Node) -> N.Node:
    """Exact structural copy of a template subtree.

    Faster than ``copy.deepcopy`` because everything immutable — the
    ``CType`` values that dominate a declaration's payload, strings,
    numbers — is shared rather than reconstructed; only the mutable
    :class:`~repro.cfront.nodes.Node` dataclasses are copied.  Field
    values (including ``uid``/``line``/``col``) are preserved verbatim;
    :func:`offset_node` remaps the copy into its final position.
    """
    cls = node.__class__
    new = object.__new__(cls)
    dst = new.__dict__
    for key, value in node.__dict__.items():
        if isinstance(value, N.Node):
            value = clone_template_decl(value)
        elif type(value) is list:
            value = [
                clone_template_decl(item) if isinstance(item, N.Node) else item
                for item in value
            ]
        dst[key] = value
    return new


def offset_node(root: N.Node, uid_base: int, line_base: int) -> None:
    """Shift a relative-coordinate subtree into unit position: every
    node's ``uid`` advances by *uid_base* and ``line`` by *line_base*
    (columns are position-independent).  This is the deterministic
    renumbering pass that makes grafted units uid-exact."""
    if not uid_base and not line_base:
        return
    stack = [root]
    while stack:
        node = stack.pop()
        node.uid += uid_base
        node.line += line_base
        stack.extend(node.children())


# --------------------------------------------------------------------------
# Unit reconstruction
# --------------------------------------------------------------------------


class GraftStats:
    """Wall-clock and cache-tier breakdown of one reconstruction."""

    __slots__ = ("parse_seconds", "graft_seconds", "remap_seconds",
                 "hits", "misses")

    def __init__(self) -> None:
        self.parse_seconds = 0.0
        self.graft_seconds = 0.0
        self.remap_seconds = 0.0
        self.hits = 0
        self.misses = 0


def graft_unit(
    blocks: Sequence[str], top_name: str = ""
) -> Tuple[N.TranslationUnit, GraftStats]:
    """Reconstruct the unit ``parse(render_unit_from_blocks(blocks))``
    would produce, parsing only the blocks without a cached template.

    Raises :class:`GraftUnsupported` when a block resists the template
    shape (callers fall back to a full parse) and propagates
    :class:`~repro.errors.ParseError` untouched for invalid source.
    """
    if not blocks:
        raise GraftUnsupported("no blocks to graft")
    typedefs: Dict[str, T.CType] = {}
    structs: Dict[str, T.StructType] = {}
    env_digest = _ENV_SEED
    stats = GraftStats()
    decls: List[N.Decl] = []
    unit_loc = (0, 0)
    uid_base = 0
    line_base = 0
    for index, block in enumerate(blocks):
        key = (hashlib.sha256(block.encode()).digest(), env_digest)
        template = _TEMPLATES.get(key)
        if template is None:
            hole_key, holes = _hole_key(block, env_digest)
            family = _HOLE_FAMILIES.get(hole_key)
            substituted = None
            if family is not None:
                started = time.perf_counter()
                substituted = _substitute_family(family, block, holes)
                stats.graft_seconds += time.perf_counter() - started
            if substituted is not None:
                # Shape hit: the variant is rebuilt by literal patching,
                # no parse.  Cached under its exact key so repeats hit
                # the first tier directly.
                _HOLE_FAMILIES.move_to_end(hole_key)
                template = substituted
                stats.hits += 1
                _TEMPLATE_STATS["hits"] += 1
                _TEMPLATE_STATS["hole_hits"] += 1
                _remember_template(key, template)
            else:
                started = time.perf_counter()
                template = _parse_template(block, typedefs, structs)
                stats.parse_seconds += time.perf_counter() - started
                stats.misses += 1
                _TEMPLATE_STATS["misses"] += 1
                _remember_template(key, template)
                started = time.perf_counter()
                _register_hole_member(hole_key, holes, block, template)
                stats.graft_seconds += time.perf_counter() - started
        else:
            _TEMPLATES.move_to_end(key)
            stats.hits += 1
            _TEMPLATE_STATS["hits"] += 1
        started = time.perf_counter()
        decl = clone_template_decl(template.decl)
        stats.graft_seconds += time.perf_counter() - started
        started = time.perf_counter()
        offset_node(decl, uid_base, line_base)
        stats.remap_seconds += time.perf_counter() - started
        decls.append(decl)
        if index == 0:
            unit_loc = template.unit_loc
        if template.env_updates:
            for kind, name, value in template.env_updates:
                (typedefs if kind == "typedef" else structs)[name] = value  # type: ignore[index]
            env_digest = _advance_env(env_digest, template.env_updates)
        uid_base += template.uid_span
        line_base += template.line_count + 1  # blocks are joined by "\n\n"
    # Leave the counter exactly where a full parse would: decl parsing
    # consumed 1..uid_base, the wrapper unit takes uid_base + 1.
    N._uid_counter = itertools.count(uid_base + 1)
    unit = N.TranslationUnit(
        decls=decls, line=unit_loc[0], col=unit_loc[1]
    )
    unit.top_name = top_name
    return unit, stats


def warm_templates(blocks: Sequence[str]) -> int:
    """Pre-populate the template cache for a unit's blocks (no graft).

    Called once per worker context with the *baseline's* blocks —
    context construction already pays a full original parse and a
    reference run, so baseline templates are context state exactly like
    the rendered-block cache.  The first delta job of a search then
    starts warm, and per-job parse time only pays for genuinely novel
    (edited) declarations.  Parses count as ``warmed``, not job misses.
    Stops quietly at the first unsupported block: warming is an
    optimization, never a correctness dependency.

    Returns the number of blocks actually parsed.
    """
    typedefs: Dict[str, T.CType] = {}
    structs: Dict[str, T.StructType] = {}
    env_digest = _ENV_SEED
    parsed = 0
    for block in blocks:
        key = (hashlib.sha256(block.encode()).digest(), env_digest)
        template = _TEMPLATES.get(key)
        if template is None:
            try:
                template = _parse_template(block, typedefs, structs)
            except GraftUnsupported:
                return parsed
            parsed += 1
            _TEMPLATE_STATS["warmed"] += 1
            _remember_template(key, template)
            hole_key, holes = _hole_key(block, env_digest)
            _register_hole_member(hole_key, holes, block, template)
        else:
            _TEMPLATES.move_to_end(key)
        if template.env_updates:
            for kind, name, value in template.env_updates:
                (typedefs if kind == "typedef" else structs)[name] = value  # type: ignore[index]
            env_digest = _advance_env(env_digest, template.env_updates)
    return parsed


def graft_unit_cross(
    blocks: Sequence[str], top_name: str = ""
) -> Tuple[N.TranslationUnit, GraftStats]:
    """``cross`` mode: graft, then full-parse the identical source and
    assert node-exact equality.  Returns the grafted unit so the rest
    of the pipeline exercises the graft path end to end."""
    unit, stats = graft_unit(blocks, top_name)
    started = time.perf_counter()
    N._uid_counter = itertools.count(1)
    full = parse(render_unit_from_blocks(blocks), top_name=top_name)
    stats.parse_seconds += time.perf_counter() - started
    assert_units_identical(unit, full)
    return unit, stats


def assert_units_identical(
    grafted: N.TranslationUnit, full: N.TranslationUnit
) -> None:
    """Raise :class:`GraftMismatch` unless the two units are value-
    identical in every field, bookkeeping included."""
    grafted_nodes = list(grafted.walk())
    full_nodes = list(full.walk())
    if len(grafted_nodes) != len(full_nodes):
        raise GraftMismatch(
            f"graft produced {len(grafted_nodes)} nodes, "
            f"full parse {len(full_nodes)}"
        )
    for g, f in zip(grafted_nodes, full_nodes):
        if (type(g), g.uid, g.line, g.col) != (type(f), f.uid, f.line, f.col):
            raise GraftMismatch(
                "graft diverged at walk position "
                f"{full_nodes.index(f)}: grafted "
                f"{type(g).__name__}(uid={g.uid}, {g.line}:{g.col}) vs "
                f"full {type(f).__name__}(uid={f.uid}, {f.line}:{f.col})"
            )
    if grafted != full:  # field-exact, recursive dataclass equality
        raise GraftMismatch(
            "grafted unit is walk-isomorphic but not field-identical "
            "to the full parse"
        )


# --------------------------------------------------------------------------
# Parent-side copy-on-write clone (edits/base.cloned_unit)
# --------------------------------------------------------------------------

#: ``TranslationUnit.__dict__`` residue a full ``clone()`` drops; the
#: COW clone must drop exactly the same keys (anything else —
#: ``_compiled_program``, ``_batch_program`` — is deep-copied so the
#: lineage markers those values' ``__deepcopy__`` hooks produce are
#: replicated bit for bit).
_CLONE_DROPPED = frozenset((
    "_fp_table", "_unit_fp", "_walk_uids", "_walk_index",
    "_memo_worthwhile", "_profile_keys",
))
#: Dataclass fields copied by reference (immutable or scalar).
_UNIT_FIELDS = frozenset(("line", "col", "uid", "top_name"))


def _decl_name(decl: N.Decl) -> str:
    if isinstance(decl, N.StructDef):
        return decl.tag
    return getattr(decl, "name", "")


def cow_clone_unit(
    parent: N.TranslationUnit, dirty: Set[str]
) -> N.TranslationUnit:
    """Clone *parent* for in-place rewriting of the *dirty* declarations
    only: dirty decls (matched by the same name/tag rule fingerprint
    inheritance uses) are deep-copied, clean decls are shared by
    reference.  Sharing is sound under the dirty contract that already
    governs fingerprint inheritance — an edit never mutates outside its
    declared dirty set — and units are never mutated once evaluation
    starts, so sharing into evaluated candidates is read-only."""
    decls: List[N.Decl] = [
        copy.deepcopy(decl) if _decl_name(decl) in dirty else decl
        for decl in parent.decls
    ]
    unit = object.__new__(N.TranslationUnit)
    for key, value in parent.__dict__.items():
        if key in _CLONE_DROPPED:
            continue
        if key == "decls":
            value = decls
        elif key not in _UNIT_FIELDS:
            value = copy.deepcopy(value)
        unit.__dict__[key] = value
    return unit
