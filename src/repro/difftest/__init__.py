"""Differential testing harness (CPU reference vs HLS simulation)."""

from .harness import (
    CPU_NS_PER_STEP,
    MAX_COUNTEREXAMPLES,
    Counterexample,
    DiffReport,
    differential_test,
    outputs_equal,
    run_cpu_reference,
)

__all__ = [
    "CPU_NS_PER_STEP",
    "MAX_COUNTEREXAMPLES",
    "Counterexample",
    "DiffReport",
    "differential_test",
    "outputs_equal",
    "run_cpu_reference",
]
