"""Differential testing between the CPU run and the HLS simulation.

This is HeteroGen's behaviour-preservation oracle (§5.3, "Behavior
Preservation via Differential Testing"): execute the original C program
on the CPU model and the transpiled candidate on the FPGA model with the
same generated tests, and compare input-output behaviour.  The harness
also reports both latencies, since the fitness function weighs
performance once behaviour is preserved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from ..cfront import nodes as N
from ..hls.clock import ACT_CPU_RUN, SimulatedClock
from ..hls.platform import SolutionConfig
from ..hls.simulator import SimulationReport, simulate
from ..interp import ExecLimits, engine_run_many, make_engine
from ..obs import SPAN_CPU_REFERENCE, SPAN_DIFFTEST, get_recorder

#: CPU latency model: abstract interpreter steps to nanoseconds.  An
#: abstract step is roughly one scalar operation; 1.5 ns/step models a
#: superscalar core retiring a couple of ops per cycle, which keeps the
#: CPU baseline competitive the way the paper's i7 was.
CPU_NS_PER_STEP = 1.5

#: Relative tolerance when comparing floating-point outputs.  Custom HLS
#: float types legitimately round differently from x86 long double; the
#: oracle asks for behavioural equivalence, not bit equality.
FLOAT_RTOL = 1e-4
FLOAT_ATOL = 1e-6


#: Counterexamples retained per differential-testing session.  Three is
#: enough for the repair synthesizer to triangulate a parameter while
#: keeping cached evaluation payloads small; selection is deterministic
#: (the first mismatches in test order).
MAX_COUNTEREXAMPLES = 3


@dataclass
class Counterexample:
    """One concrete diverging input with both observed behaviours.

    This is the evidence payload ROADMAP's "counterexample-driven repair
    synthesis" item asks for: not just *that* test ``test_index`` failed,
    but the arguments that falsified the candidate and what each side
    computed, so parameterized edits can derive fixes instead of
    enumerating them.  ``actual`` is None when the candidate faulted
    rather than producing a wrong answer.
    """

    test_index: int
    args: List[Any]
    expected: Any
    actual: Optional[Any]
    fault: str = ""


@dataclass
class DiffReport:
    """Outcome of one differential-testing session."""

    total: int
    matching: int
    mismatching_tests: List[int] = field(default_factory=list)
    counterexamples: List[Counterexample] = field(default_factory=list)
    """Concrete evidence for the first :data:`MAX_COUNTEREXAMPLES`
    mismatches, in test order."""
    untested: int = 0
    """Tests never executed because ``max_faults`` aborted the simulation
    early.  They are neither matches nor observed mismatches, so the
    report stays internally consistent:
    ``matching + len(mismatching_tests) + untested == total``."""
    cpu_latency_ns: float = 0.0
    fpga_latency_ns: float = 0.0
    fpga_faults: int = 0

    @property
    def pass_ratio(self) -> float:
        return self.matching / self.total if self.total else 1.0

    @property
    def behavior_preserved(self) -> bool:
        return self.total > 0 and self.matching == self.total

    @property
    def speedup(self) -> float:
        """CPU time / FPGA time — >1 means the FPGA version is faster."""
        if self.fpga_latency_ns <= 0:
            return 0.0
        return self.cpu_latency_ns / self.fpga_latency_ns


def outputs_equal(left: Any, right: Any) -> bool:
    """Structural comparison with float tolerance.

    Fast path: exact equality implies tolerant equality (ints compare
    exactly; ``1 == 1.0`` is also isclose; ``==`` never equates NaNs, so
    the NaN==NaN rule is untouched), and the overwhelmingly common case —
    int-only nested lists from a passing candidate — short-circuits in a
    single C-level comparison instead of a Python walk.  Only a ``False``
    falls through to the tolerant traversal, so mixed list/tuple shapes
    and near-equal floats behave exactly as before."""
    if left == right:
        return True
    if isinstance(left, (list, tuple)) and isinstance(right, (list, tuple)):
        if len(left) != len(right):
            return False
        return all(outputs_equal(a, b) for a, b in zip(left, right))
    if isinstance(left, dict) and isinstance(right, dict):
        if left.keys() != right.keys():
            return False
        return all(outputs_equal(left[k], right[k]) for k in left)
    if isinstance(left, float) or isinstance(right, float):
        if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
            return False
        if math.isnan(float(left)) and math.isnan(float(right)):
            return True
        return math.isclose(
            float(left), float(right), rel_tol=FLOAT_RTOL, abs_tol=FLOAT_ATOL
        )
    return left == right


def run_cpu_reference(
    unit: N.TranslationUnit,
    kernel_name: str,
    tests: Sequence[List[Any]],
    limits: Optional[ExecLimits] = None,
    clock: Optional[SimulatedClock] = None,
    backend: Optional[str] = None,
) -> Tuple[List[Optional[Tuple[Any, Tuple[Any, ...]]]], float]:
    """Execute the original program on every test.

    Returns per-test observables (None when the reference itself faulted,
    which only happens for hostile fuzz inputs) and the average CPU
    latency in nanoseconds.
    """
    with get_recorder().span(
        SPAN_CPU_REFERENCE, clock=clock, kernel=kernel_name, tests=len(tests)
    ):
        interp = make_engine(unit, backend=backend, limits=limits or ExecLimits())
        observables: List[Optional[Tuple[Any, Tuple[Any, ...]]]] = []
        max_steps = 0
        runs = 0
        # All tests in one batched call (pooled runtime under the batch
        # backend; a per-input loop with identical semantics elsewhere).
        for record in engine_run_many(interp, kernel_name, tests):
            if record.result is not None:
                observables.append(record.result.observable())
                max_steps = max(max_steps, record.result.steps)
                runs += 1
            else:
                observables.append(None)
        # The reported CPU latency is that of the *heaviest* passing test:
        # the scheduler's FPGA estimate models the full-size workload
        # (static tripcounts), so the CPU side must too — an average over
        # trivial fuzz inputs would not be comparable.
        cpu_ns = max_steps * CPU_NS_PER_STEP if runs else float("inf")
        if clock is not None:
            clock.charge(ACT_CPU_RUN, 0.01 * len(tests))
    return observables, cpu_ns


def differential_test(
    original: N.TranslationUnit,
    candidate: N.TranslationUnit,
    kernel_name: str,
    config: SolutionConfig,
    tests: Sequence[List[Any]],
    limits: Optional[ExecLimits] = None,
    clock: Optional[SimulatedClock] = None,
    reference: Optional[List[Optional[Tuple[Any, Tuple[Any, ...]]]]] = None,
    cpu_latency_ns: Optional[float] = None,
    max_faults: Optional[int] = None,
    backend: Optional[str] = None,
) -> DiffReport:
    """Compare *candidate* (FPGA model) against *original* (CPU model).

    The CPU reference can be precomputed once and passed in — the repair
    loop compares many candidates against the same reference.
    """
    tests = list(tests)
    if reference is None or cpu_latency_ns is None:
        reference, cpu_latency_ns = run_cpu_reference(
            original, kernel_name, tests, limits=limits, clock=clock,
            backend=backend,
        )
    with get_recorder().span(
        SPAN_DIFFTEST, clock=clock, kernel=kernel_name, tests=len(tests)
    ):
        sim: SimulationReport = simulate(
            candidate, config, tests, clock=clock, limits=limits,
            max_faults=max_faults, backend=backend,
        )
        matching = 0
        untested = 0
        mismatching: List[int] = []
        counterexamples: List[Counterexample] = []
        for i, (ref, outcome) in enumerate(zip(reference, sim.outcomes)):
            if ref is None:
                # The reference faulted on this input; any candidate
                # behaviour is acceptable (the paper's oracle is defined
                # on well-formed CPU behaviour).
                matching += 1
                continue
            if outcome.skipped:
                # The fault budget aborted the session before this test
                # ran: no observation was made either way.
                untested += 1
                continue
            if outcome.ok and outputs_equal(
                _obs_py(ref), _obs_py(outcome.observable)
            ):
                matching += 1
            else:
                mismatching.append(i)
                if len(counterexamples) < MAX_COUNTEREXAMPLES:
                    counterexamples.append(
                        Counterexample(
                            test_index=i,
                            args=list(tests[i]),
                            expected=_obs_py(ref),
                            actual=(
                                _obs_py(outcome.observable)
                                if outcome.ok else None
                            ),
                            fault=outcome.fault,
                        )
                    )
    return DiffReport(
        total=len(tests),
        matching=matching,
        mismatching_tests=mismatching,
        counterexamples=counterexamples,
        untested=untested,
        cpu_latency_ns=cpu_latency_ns,
        fpga_latency_ns=sim.kernel_latency_ns,
        fpga_faults=sim.faults,
    )


def _obs_py(obs: Any) -> Any:
    """Convert frozen observables back to comparable nested lists."""
    if isinstance(obs, tuple):
        return [_obs_py(o) for o in obs]
    return obs
