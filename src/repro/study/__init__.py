"""The forum-post error study (§5.1, Figure 3, Table 1)."""

from .analyze import StudyReport, analyze_corpus, classify_post
from .corpus import ForumPost, generate_corpus
from .taxonomy import TAXONOMY, TaxonomyEntry, render_table1, taxonomy_by_type

__all__ = [
    "ForumPost",
    "StudyReport",
    "TAXONOMY",
    "TaxonomyEntry",
    "analyze_corpus",
    "classify_post",
    "generate_corpus",
    "render_table1",
    "taxonomy_by_type",
]
