"""Synthetic Xilinx-forum post corpus (the study input of §5.1).

The paper examined 1,000 Q&A posts found with the search terms "high
level synthesis error" and "C synthesis error" and grouped them into six
root-cause categories (Figure 3).  The forum itself is proprietary and
long since reorganised, so the reproduction regenerates a corpus with
the *published* category mix: each synthetic post embeds the phrase
patterns of its category (drawn from the taxonomy) inside templated
question text.  The analysis half (:mod:`.analyze`) then classifies the
posts from their text alone and recovers the proportions — validating
the keyword classifier the repair pipeline relies on (§5.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..hls.diagnostics import FORUM_PROPORTIONS, ErrorType
from .taxonomy import taxonomy_by_type

#: Question templates; ``{phrase}`` is replaced with a category keyword.
_TEMPLATES = [
    "Hi all, when I run C synthesis Vivado reports '{phrase}' and I do "
    "not understand why. My kernel worked fine in software.",
    "I keep hitting a high level synthesis error: {phrase}. Is there a "
    "recommended rewrite?",
    "After upgrading to 2019.2 my design stopped building with "
    "'{phrase}'. The same C code compiles with gcc.",
    "Synthesis fails with {phrase} — what is the correct coding style "
    "for this on an Ultrascale+ part?",
    "ERROR during csynth: {phrase}. I followed UG902 but the message "
    "persists. Any pointers appreciated.",
    "My testbench passes C simulation but C synthesis aborts with "
    "'{phrase}'. How do people usually fix this?",
]

#: Filler sentences so posts are not trivially identical.
_FILLERS = [
    "The project targets a VCU1525 acceleration card.",
    "I am new to HLS and come from a software background.",
    "The kernel is about 300 lines of C.",
    "Reducing the design did not make the message go away.",
    "I attached the relevant snippet below.",
    "The same code synthesises fine without the pragma.",
]


@dataclass(frozen=True)
class ForumPost:
    """One synthetic Q&A post."""

    post_id: int
    title: str
    body: str
    true_type: ErrorType

    @property
    def text(self) -> str:
        return f"{self.title}\n{self.body}"


def generate_corpus(
    n_posts: int = 1000,
    seed: int = 2022,
    proportions: Optional[Dict[ErrorType, float]] = None,
) -> List[ForumPost]:
    """Generate *n_posts* posts with the published category mix."""
    proportions = proportions or FORUM_PROPORTIONS
    rng = random.Random(seed)
    by_type = taxonomy_by_type()

    # Deterministic counts per category (largest-remainder rounding).
    raw = {t: n_posts * p for t, p in proportions.items()}
    counts = {t: int(v) for t, v in raw.items()}
    shortfall = n_posts - sum(counts.values())
    for t in sorted(raw, key=lambda t: raw[t] - counts[t], reverse=True):
        if shortfall <= 0:
            break
        counts[t] += 1
        shortfall -= 1

    posts: List[ForumPost] = []
    post_id = 100000
    for error_type, count in counts.items():
        entry = by_type[error_type]
        for _ in range(count):
            phrase = rng.choice(entry.keywords)
            template = rng.choice(_TEMPLATES)
            filler = rng.choice(_FILLERS)
            title = f"[HLS] {phrase} ?"
            body = template.format(phrase=phrase) + " " + filler
            posts.append(
                ForumPost(
                    post_id=post_id,
                    title=title,
                    body=body,
                    true_type=error_type,
                )
            )
            post_id += 1
    rng.shuffle(posts)
    return posts
