"""The HLS-compatibility error taxonomy (Table 1).

Each entry records an error family, the representative Xilinx forum post
the paper cites, its error symptom, and the repair strategy — the
knowledge the fix patterns of Table 2 were distilled from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..hls.diagnostics import ErrorType


@dataclass(frozen=True)
class TaxonomyEntry:
    """One row of Table 1."""

    error_type: ErrorType
    post_id: str
    symptom: str
    repair: str
    keywords: Tuple[str, ...]
    """Phrases that identify posts of this family (used both by the
    classifier and by the synthetic corpus generator)."""


TAXONOMY: List[TaxonomyEntry] = [
    TaxonomyEntry(
        error_type=ErrorType.DYNAMIC_DATA_STRUCTURES,
        post_id="729976",
        symptom=(
            "Allocating an array with unknown size leads to 'ERROR: "
            "Dynamic memory allocation is not supported'"
        ),
        repair="Specify the array size",
        keywords=(
            "dynamic memory allocation",
            "malloc",
            "recursive function",
            "unknown size at compile time",
            "free is not supported",
        ),
    ),
    TaxonomyEntry(
        error_type=ErrorType.UNSUPPORTED_DATA_TYPES,
        post_id="752508",
        symptom=(
            "The long double variable leads to 'ERROR: Call of overloaded "
            "pow() is ambiguous'"
        ),
        repair=(
            "Type transformation, followed by explicit type casting and "
            "operator overloading"
        ),
        keywords=(
            "long double",
            "overloaded",
            "fixed point",
            "ap_fixed",
            "pointer to pointer is not supported",
            "unsupported type",
        ),
    ),
    TaxonomyEntry(
        error_type=ErrorType.DATAFLOW_OPTIMIZATION,
        post_id="595161",
        symptom="Inserting dataflow pragma leads to 'ERROR: Argument "
        "data failed dataflow checking'",
        repair="Pragma exploration",
        keywords=(
            "failed dataflow checking",
            "dataflow directive",
            "dataflow region",
            "single producer consumer",
        ),
    ),
    TaxonomyEntry(
        error_type=ErrorType.LOOP_PARALLELIZATION,
        post_id="721719",
        symptom=(
            "Inserting dataflow pragma and unroll pragma fails the "
            "pre-synthesis"
        ),
        repair="Pragma exploration",
        keywords=(
            "unroll factor",
            "pre-synthesis failed",
            "pipeline ii",
            "loop tripcount",
            "initiation interval",
        ),
    ),
    TaxonomyEntry(
        error_type=ErrorType.STRUCT_AND_UNION,
        post_id="1117215",
        symptom=(
            "Struct leads to 'ERROR: Argument this has an unsynthesizable "
            "struct type'"
        ),
        repair=(
            "Insert an explicit constructor and make the connecting "
            "stream static"
        ),
        keywords=(
            "unsynthesizable struct",
            "union is not supported",
            "hls::stream in struct",
            "struct constructor",
        ),
    ),
    TaxonomyEntry(
        error_type=ErrorType.TOP_FUNCTION,
        post_id="810885",
        symptom=(
            "Incorrect configuration leads to 'ERROR: Cannot find the top "
            "function in the design'"
        ),
        repair="Configuration Exploration",
        keywords=(
            "cannot find the top function",
            "set_top",
            "clock period",
            "target device",
            "top function name",
        ),
    ),
]


def taxonomy_by_type() -> Dict[ErrorType, TaxonomyEntry]:
    return {entry.error_type: entry for entry in TAXONOMY}


def render_table1() -> str:
    """Table 1 as aligned text, one row per error family."""
    header = f"{'Type':26} {'Post':8} Repair"
    lines = [header, "-" * len(header)]
    for entry in TAXONOMY:
        lines.append(
            f"{entry.error_type.value:26} {entry.post_id:8} {entry.repair}"
        )
    return "\n".join(lines)
