"""Classify forum posts and recover the Figure 3 proportions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..hls.diagnostics import FORUM_PROPORTIONS, ErrorType
from .corpus import ForumPost
from .taxonomy import TAXONOMY


def classify_post(post: ForumPost) -> Optional[ErrorType]:
    """Keyword classification of one post (same mechanism as §5.2's error
    message classification, applied to free-form forum text)."""
    text = post.text.lower()
    best: Optional[ErrorType] = None
    best_score = 0
    for entry in TAXONOMY:
        score = sum(1 for kw in entry.keywords if kw in text)
        if score > best_score:
            best_score = score
            best = entry.error_type
    return best


@dataclass
class StudyReport:
    """Figure 3: proportions of the six error families in the corpus."""

    total: int
    counts: Dict[ErrorType, int] = field(default_factory=dict)
    unclassified: int = 0
    accuracy: float = 0.0

    def proportion(self, error_type: ErrorType) -> float:
        if self.total == 0:
            return 0.0
        return self.counts.get(error_type, 0) / self.total

    def render(self) -> str:
        """The pie chart of Figure 3, as text."""
        lines = ["HLS compatibility error types (n=%d):" % self.total]
        ordered = sorted(
            ErrorType, key=lambda t: self.proportion(t), reverse=True
        )
        for error_type in ordered:
            measured = self.proportion(error_type)
            published = FORUM_PROPORTIONS[error_type]
            bar = "#" * int(round(measured * 50))
            lines.append(
                f"  {error_type.value:26} {measured:6.1%} "
                f"(paper {published:5.1%}) {bar}"
            )
        lines.append(f"  classifier accuracy: {self.accuracy:.1%}")
        return "\n".join(lines)


def analyze_corpus(posts: Sequence[ForumPost]) -> StudyReport:
    """Classify every post and tally the family proportions."""
    report = StudyReport(total=len(posts))
    correct = 0
    for post in posts:
        predicted = classify_post(post)
        if predicted is None:
            report.unclassified += 1
            continue
        report.counts[predicted] = report.counts.get(predicted, 0) + 1
        if predicted == post.true_type:
            correct += 1
    report.accuracy = correct / len(posts) if posts else 0.0
    return report
