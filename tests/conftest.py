"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Any, List

import pytest

from repro.cfront import parse
from repro.hls import SolutionConfig
from repro.interp import run_program


def run_c(source: str, func: str, args: List[Any], **kwargs):
    """Parse and execute in one go; returns the ExecResult."""
    return run_program(parse(source), func, args, **kwargs)


@pytest.fixture
def sum_array_source() -> str:
    return """
    int sum_array(int a[8], int n) {
        int total = 0;
        for (int i = 0; i < n; i++) {
            total += a[i];
        }
        return total;
    }
    """


@pytest.fixture
def tree_source() -> str:
    """Figure 2-style program: malloc + pointers + void recursion."""
    return """
    struct Node {
        int val;
        struct Node *left;
        struct Node *right;
    };

    static int visit_sum = 0;

    struct Node *tree_insert(struct Node *root, int v) {
        struct Node *n = (struct Node *)malloc(sizeof(struct Node));
        n->val = v;
        n->left = 0;
        n->right = 0;
        if (root == 0) {
            return n;
        }
        struct Node *curr = root;
        while (1) {
            if (v < curr->val) {
                if (curr->left == 0) {
                    curr->left = n;
                    break;
                }
                curr = curr->left;
            } else {
                if (curr->right == 0) {
                    curr->right = n;
                    break;
                }
                curr = curr->right;
            }
        }
        return root;
    }

    void traverse(struct Node *curr) {
        if (curr == 0) {
            return;
        }
        visit_sum = visit_sum + curr->val;
        traverse(curr->left);
        traverse(curr->right);
    }

    int kernel(int input[16], int n) {
        if (n < 0) {
            n = 0;
        }
        if (n > 16) {
            n = 16;
        }
        struct Node *root = 0;
        visit_sum = 0;
        for (int i = 0; i < n; i++) {
            root = tree_insert(root, input[i]);
        }
        traverse(root);
        return visit_sum;
    }
    """


@pytest.fixture
def tree_solution() -> SolutionConfig:
    return SolutionConfig(top_name="kernel")
