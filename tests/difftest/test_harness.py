"""Differential-testing harness tests."""

import math

import pytest

from repro.cfront import parse
from repro.difftest import (
    DiffReport,
    differential_test,
    outputs_equal,
    run_cpu_reference,
)
from repro.hls import SolutionConfig

CORRECT = """
int kernel(int a[4], int n) {
    if (n > 4) { n = 4; }
    int total = 0;
    for (int i = 0; i < n; i++) { total += a[i]; }
    return total;
}
"""

# A "transpiled" version whose 4-bit accumulator wraps: behaviourally
# wrong for large sums — the divergence differential testing must catch.
WRAPPED = CORRECT.replace("int total = 0;", "fpga_uint<4> total = 0;")


class TestOutputsEqual:
    def test_scalars(self):
        assert outputs_equal(3, 3)
        assert not outputs_equal(3, 4)

    def test_float_tolerance(self):
        assert outputs_equal(1.0, 1.0 + 1e-9)
        assert not outputs_equal(1.0, 1.01)

    def test_nan_equals_nan(self):
        assert outputs_equal(float("nan"), float("nan"))

    def test_nested_structures(self):
        assert outputs_equal([1, [2.0, 3]], (1, (2.0 + 1e-12, 3)))
        assert not outputs_equal([1, 2], [1, 2, 3])
        assert outputs_equal({"a": 1.0}, {"a": 1.0})
        assert not outputs_equal({"a": 1}, {"b": 1})

    def test_float_vs_non_number(self):
        assert not outputs_equal(1.0, "1.0")

    def test_exact_fast_path_preserves_tolerant_semantics(self):
        # The `left == right` short-circuit may only fire when the
        # tolerant walk would also say True.
        assert outputs_equal([1, [2, 3]], [1, [2, 3]])  # int fast path
        assert outputs_equal(1, 1.0)  # == True, and isclose too
        assert outputs_equal(0.1 + 0.2, 0.3)  # == False -> tolerant walk
        assert not outputs_equal(1.0, 1.0 * (1 + 2e-4))  # beyond rtol
        assert outputs_equal(1.0, 1.0 * (1 + 2e-5))  # within rtol

    def test_fast_path_never_bypasses_nan_rule(self):
        # == never equates NaNs, so NaN comparisons always reach the walk.
        nan = float("nan")
        assert outputs_equal([nan, 1], [nan, 1])
        assert outputs_equal({"x": nan}, {"x": nan})
        assert not outputs_equal([nan], [1.0])

    def test_fast_path_list_tuple_mix(self):
        # list != tuple under ==, so mixed shapes still take the walk.
        assert outputs_equal([1, 2], (1, 2))
        assert outputs_equal(((1.5,),), [[1.5 + 1e-9]])


class TestCpuReference:
    def test_observables_and_latency(self):
        unit = parse(CORRECT)
        tests = [[[1, 2, 3, 4], 4], [[5, 5, 0, 0], 2]]
        obs, cpu_ns = run_cpu_reference(unit, "kernel", tests)
        assert obs[0][0] == 10
        assert obs[1][0] == 10
        assert cpu_ns > 0

    def test_faulting_test_marked_none(self):
        unit = parse(CORRECT)
        obs, _ = run_cpu_reference(unit, "kernel", [[[1], 4]])
        assert obs == [None]

    def test_latency_is_max_over_tests(self):
        unit = parse(CORRECT)
        _, short = run_cpu_reference(unit, "kernel", [[[1, 1, 1, 1], 1]])
        _, mixed = run_cpu_reference(
            unit, "kernel", [[[1, 1, 1, 1], 1], [[1, 1, 1, 1], 4]]
        )
        assert mixed > short


class TestDifferentialTest:
    def run(self, candidate_src, tests):
        original = parse(CORRECT)
        candidate = parse(candidate_src, top_name="kernel")
        return differential_test(
            original, candidate, "kernel",
            SolutionConfig(top_name="kernel"), tests,
        )

    def test_identical_program_preserves_behavior(self):
        report = self.run(CORRECT, [[[1, 2, 3, 4], 4], [[9, 9, 9, 9], 4]])
        assert report.behavior_preserved
        assert report.pass_ratio == 1.0

    def test_wrapped_bitwidth_detected(self):
        # sums <= 15 agree; the big-sum test diverges.
        report = self.run(WRAPPED, [[[1, 2, 3, 4], 4], [[9, 9, 9, 9], 4]])
        assert not report.behavior_preserved
        assert report.mismatching_tests == [1]
        assert report.pass_ratio == 0.5

    def test_crashing_candidate_counts_as_divergence(self):
        crashing = CORRECT.replace("total += a[i];", "total += a[i + 9];")
        report = self.run(crashing, [[[1, 2, 3, 4], 4]])
        assert not report.behavior_preserved
        assert report.fpga_faults == 1

    def test_reference_fault_is_vacuous(self):
        # Both sides fault on a hostile input: not a divergence.
        report = self.run(CORRECT, [[[1], 4]])
        assert report.behavior_preserved

    def test_fault_budget_truncation_counts_untested(self):
        """When ``max_faults`` aborts the simulation early, the tests the
        budget never reached are reported as ``untested``, not silently
        folded into matches or mismatches."""
        crashing = CORRECT.replace("total += a[i];", "total += a[i + 9];")
        original = parse(CORRECT)
        candidate = parse(crashing, top_name="kernel")
        tests = [[[1, 2, 3, 4], 4] for _ in range(6)]
        # Duplicate inputs are fine: each is its own session test.
        report = differential_test(
            original, candidate, "kernel",
            SolutionConfig(top_name="kernel"), tests, max_faults=2,
        )
        assert report.total == 6
        assert report.fpga_faults == 2
        assert report.untested == 4
        assert report.matching + len(report.mismatching_tests) + report.untested \
            == report.total
        assert not report.behavior_preserved

    def test_untested_defaults_to_zero_without_truncation(self):
        report = self.run(CORRECT, [[[1, 2, 3, 4], 4]])
        assert report.untested == 0
        assert report.matching + len(report.mismatching_tests) == report.total

    def test_speedup_computation(self):
        report = DiffReport(
            total=1, matching=1, cpu_latency_ns=3000.0, fpga_latency_ns=1500.0
        )
        assert report.speedup == 2.0
        zero = DiffReport(total=1, matching=1, fpga_latency_ns=0.0)
        assert zero.speedup == 0.0

    def test_precomputed_reference_reused(self):
        original = parse(CORRECT)
        candidate = parse(CORRECT, top_name="kernel")
        tests = [[[1, 2, 3, 4], 4]]
        ref, cpu_ns = run_cpu_reference(original, "kernel", tests)
        report = differential_test(
            original, candidate, "kernel",
            SolutionConfig(top_name="kernel"), tests,
            reference=ref, cpu_latency_ns=cpu_ns,
        )
        assert report.behavior_preserved
        assert report.cpu_latency_ns == cpu_ns

    def test_empty_suite_not_preserved(self):
        report = self.run(CORRECT, [])
        assert not report.behavior_preserved  # no evidence, no claim
