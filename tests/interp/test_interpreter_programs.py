"""Whole-program interpreter tests on realistic kernels.

These cross-check the interpreter against independently computed
expected results (Python reimplementations of the same algorithms),
giving confidence that the CPU reference side of differential testing
is itself trustworthy.
"""

import pytest

from ..conftest import run_c

MERGE_SORT = """
static float tmp[64];

void merge(float a[64], int lo, int mid, int hi) {
    int i = lo;
    int j = mid;
    int k = lo;
    while (i < mid && j < hi) {
        if (a[i] <= a[j]) { tmp[k] = a[i]; i++; }
        else { tmp[k] = a[j]; j++; }
        k++;
    }
    while (i < mid) { tmp[k] = a[i]; i++; k++; }
    while (j < hi) { tmp[k] = a[j]; j++; k++; }
    for (int t = lo; t < hi; t++) { a[t] = tmp[t]; }
}

void msort(float a[64], int lo, int hi) {
    if (hi - lo <= 1) { return; }
    int mid = lo + (hi - lo) / 2;
    msort(a, lo, mid);
    msort(a, mid, hi);
    merge(a, lo, mid, hi);
}

void kernel(float a[64], int n) {
    msort(a, 0, n);
}
"""


def test_merge_sort_matches_python_sorted():
    data = [float((i * 37) % 101 - 50) for i in range(64)]
    result = run_c(MERGE_SORT, "kernel", [list(data), 64])
    assert result.out_args[0] == sorted(data)


def test_merge_sort_prefix_only():
    data = [5.0, 1.0, 4.0, 2.0] + [9.0] * 60
    result = run_c(MERGE_SORT, "kernel", [list(data), 4])
    assert result.out_args[0][:4] == [1.0, 2.0, 4.0, 5.0]
    assert result.out_args[0][4:] == [9.0] * 60


MATMUL = """
void mmul(int a[16], int b[16], int c[16]) {
    for (int i = 0; i < 4; i++) {
        for (int j = 0; j < 4; j++) {
            int acc = 0;
            for (int k = 0; k < 4; k++) {
                acc += a[i * 4 + k] * b[k * 4 + j];
            }
            c[i * 4 + j] = acc;
        }
    }
}
"""


def test_matmul_matches_python():
    a = [(i * 3 + 1) % 7 for i in range(16)]
    b = [(i * 5 + 2) % 9 for i in range(16)]
    expected = [
        sum(a[i * 4 + k] * b[k * 4 + j] for k in range(4))
        for i in range(4)
        for j in range(4)
    ]
    result = run_c(MATMUL, "mmul", [a, b, [0] * 16])
    assert result.out_args[2] == expected


GCD = """
int gcd(int a, int b) {
    while (b != 0) {
        int t = a % b;
        a = b;
        b = t;
    }
    return a;
}
"""


@pytest.mark.parametrize("a, b", [(48, 18), (17, 5), (100, 100), (7, 0)])
def test_gcd(a, b):
    import math

    assert run_c(GCD, "gcd", [a, b]).value == math.gcd(a, b)


CRC = """
unsigned crc8(unsigned data[8], int n) {
    unsigned crc = 0;
    for (int i = 0; i < n; i++) {
        crc = crc ^ data[i];
        for (int b = 0; b < 8; b++) {
            if (crc & 128) {
                crc = ((crc << 1) ^ 7) & 255;
            } else {
                crc = (crc << 1) & 255;
            }
        }
    }
    return crc;
}
"""


def _crc8_py(data):
    crc = 0
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 0x80:
                crc = ((crc << 1) ^ 0x07) & 0xFF
            else:
                crc = (crc << 1) & 0xFF
    return crc


def test_crc8_matches_python():
    data = [0x31, 0x32, 0x33, 0x00, 0xFF, 0x7E, 0x80, 0x01]
    assert run_c(CRC, "crc8", [data, 8]).value == _crc8_py(data)


NEWTON = """
float newton_sqrt(float x) {
    if (x <= 0.0) { return 0.0; }
    float guess = x;
    for (int i = 0; i < 24; i++) {
        guess = (guess + x / guess) * 0.5;
    }
    return guess;
}
"""


@pytest.mark.parametrize("x", [4.0, 2.0, 100.0, 0.25])
def test_newton_sqrt_converges(x):
    assert run_c(NEWTON, "newton_sqrt", [x]).value == pytest.approx(
        x ** 0.5, rel=1e-5
    )


HISTOGRAM = """
void hist(int samples[32], int bins[8], int n) {
    for (int i = 0; i < 8; i++) { bins[i] = 0; }
    for (int i = 0; i < n; i++) {
        int v = samples[i];
        if (v < 0) { v = 0; }
        if (v > 7) { v = 7; }
        bins[v]++;
    }
}
"""


def test_histogram_matches_python():
    samples = [(i * 13) % 11 - 2 for i in range(32)]
    result = run_c(HISTOGRAM, "hist", [samples, [0] * 8, 32])
    expected = [0] * 8
    for v in samples:
        expected[min(7, max(0, v))] += 1
    assert result.out_args[1] == expected
