"""Backend equivalence: the tree-walker vs the closure-compiled engine.

Edge semantics that historically diverge between interpreter
implementations — integer wrap at every width, pointer arithmetic across
block boundaries, short-circuit step charges, HLS static-array faults —
asserted identical across both backends, plus the cross-check harness
and the backend-selection machinery themselves.
"""

from __future__ import annotations

import pytest

from repro.cfront import parse
from repro.errors import HlsSimulationFault, InterpError, MemoryFault
from repro.interp import (
    BACKENDS,
    BackendMismatch,
    CompiledEngine,
    CrossCheckEngine,
    ExecLimits,
    Interpreter,
    compile_program,
    default_backend,
    make_engine,
    run_program,
    set_default_backend,
)
from repro.interp.compile import CompiledProgram

BOTH = pytest.mark.parametrize("backend", ["tree", "compiled", "batch"])


def run_c(source, func, args, backend, **kwargs):
    return run_program(parse(source), func, args, backend=backend, **kwargs)


# ---------------------------------------------------------------------------
# Integer wrap at every width
# ---------------------------------------------------------------------------

SIGNED = [("char", 8), ("short", 16), ("int", 32), ("long", 64)]
UNSIGNED = [
    ("unsigned char", 8),
    ("unsigned short", 16),
    ("unsigned", 32),
    ("unsigned long", 64),
]


@BOTH
@pytest.mark.parametrize("cname,bits", SIGNED)
def test_signed_overflow_wraps(backend, cname, bits):
    src = f"{cname} bump({cname} x) {{ return x + 1; }}"
    top = (1 << (bits - 1)) - 1
    result = run_c(src, "bump", [top], backend)
    assert result.value == -(1 << (bits - 1))


@BOTH
@pytest.mark.parametrize("cname,bits", SIGNED)
def test_signed_underflow_wraps(backend, cname, bits):
    src = f"{cname} dip({cname} x) {{ return x - 1; }}"
    bottom = -(1 << (bits - 1))
    result = run_c(src, "dip", [bottom], backend)
    assert result.value == (1 << (bits - 1)) - 1


@BOTH
@pytest.mark.parametrize("cname,bits", UNSIGNED)
def test_unsigned_overflow_wraps_to_zero(backend, cname, bits):
    src = f"{cname} bump({cname} x) {{ return x + 1; }}"
    result = run_c(src, "bump", [(1 << bits) - 1], backend)
    assert result.value == 0


@BOTH
@pytest.mark.parametrize("cname,bits", UNSIGNED)
def test_unsigned_underflow_wraps_to_max(backend, cname, bits):
    src = f"{cname} dip({cname} x) {{ return x - 1; }}"
    result = run_c(src, "dip", [0], backend)
    assert result.value == (1 << bits) - 1


@BOTH
@pytest.mark.parametrize("bits", [3, 7, 12, 23])
def test_fpga_int_wrap(backend, bits):
    src = f"""
    #include "fpga.h"
    int bump(int x) {{
        fpga_uint<{bits}> v = x;
        v = v + 1;
        return (int)v;
    }}
    """
    result = run_c(src, "bump", [(1 << bits) - 1], backend)
    assert result.value == 0


# ---------------------------------------------------------------------------
# Pointer arithmetic across MemBlock boundaries
# ---------------------------------------------------------------------------

WALK_SRC = """
int poke(int n) {
    int a[4];
    a[0] = 7; a[1] = 8; a[2] = 9; a[3] = 10;
    int *p = a;
    p = p + n;
    return *p;
}
"""


@BOTH
def test_pointer_walk_in_bounds(backend):
    assert run_c(WALK_SRC, "poke", [3], backend).value == 10


@BOTH
def test_pointer_walks_off_block_faults(backend):
    with pytest.raises(MemoryFault):
        run_c(WALK_SRC, "poke", [4], backend)
    with pytest.raises(MemoryFault):
        run_c(WALK_SRC, "poke", [-1], backend)


def test_pointer_fault_messages_identical():
    """A divergent diagnostic would trip the cross-check harness."""
    excs = []
    for backend in ("tree", "compiled"):
        with pytest.raises(MemoryFault) as info:
            run_c(WALK_SRC, "poke", [4], backend)
        excs.append(str(info.value))
    assert excs[0] == excs[1]


@BOTH
def test_cross_block_pointer_difference_faults(backend):
    src = """
    int gap() {
        int a[4];
        int b[4];
        int *p = a;
        int *q = b;
        return q - p;
    }
    """
    with pytest.raises(InterpError):
        run_c(src, "gap", [], backend)


# ---------------------------------------------------------------------------
# Short-circuit step charges
# ---------------------------------------------------------------------------

SHORT_AND = """
int guard(int a, int b) {
    if (a != 0 && b / a > 1) { return 1; }
    return 0;
}
"""

SHORT_OR = """
int fallback(int a, int b) {
    if (a == 0 || b / a > 1) { return 1; }
    return 0;
}
"""


@pytest.mark.parametrize("src,args", [
    (SHORT_AND, [0, 10]),
    (SHORT_AND, [3, 10]),
    (SHORT_OR, [0, 10]),
    (SHORT_OR, [3, 10]),
])
def test_short_circuit_step_charges_match(src, args):
    unit = parse(src)
    func = "guard" if src is SHORT_AND else "fallback"
    tree = run_program(unit, func, args, backend="tree")
    compiled = run_program(unit, func, args, backend="compiled")
    assert tree.value == compiled.value
    assert tree.steps == compiled.steps


def test_short_circuit_skips_rhs_charges():
    unit = parse(SHORT_AND)
    taken = run_program(unit, "guard", [3, 10], backend="compiled")
    skipped = run_program(unit, "guard", [0, 10], backend="compiled")
    # a == 0 short-circuits past the division, so fewer abstract steps —
    # and crucially no division fault.
    assert skipped.steps < taken.steps
    assert skipped.value == 0


# ---------------------------------------------------------------------------
# HLS-mode faults
# ---------------------------------------------------------------------------

OVERFLOW_SRC = """
int kernel(int n) {
    int a[4];
    for (int i = 0; i < n; i++) { a[i] = i; }
    return a[0];
}
"""


@BOTH
def test_static_array_overflow_is_hls_fault(backend):
    with pytest.raises(HlsSimulationFault):
        run_c(OVERFLOW_SRC, "kernel", [5], backend, hls_mode=True)


@BOTH
def test_static_array_overflow_is_memory_fault_on_cpu(backend):
    with pytest.raises(MemoryFault) as info:
        run_c(OVERFLOW_SRC, "kernel", [5], backend, hls_mode=False)
    assert not isinstance(info.value, HlsSimulationFault)


# ---------------------------------------------------------------------------
# Whole-result equivalence on a meaty program
# ---------------------------------------------------------------------------

def test_full_result_identical_on_recursive_program(tree_source):
    unit = parse(tree_source)
    args = [[5, 3, 8, 1, 4, 9, 2, 7, 6, 0, 11, 13, 12, 10, 15, 14], 16]
    tree = run_program(unit, "kernel", args, backend="tree")
    compiled = run_program(unit, "kernel", args, backend="compiled")
    assert tree.observable() == compiled.observable()
    assert tree.steps == compiled.steps
    assert tree.coverage.hits == compiled.coverage.hits


@BOTH
def test_want_out_args_gating(backend, sum_array_source):
    unit = parse(sum_array_source)
    args = [[1, 2, 3, 4, 5, 6, 7, 8], 8]
    lean = make_engine(unit, backend=backend, want_out_args=False)
    full = make_engine(unit, backend=backend)
    lean_result = lean.run("sum_array", list(args))
    full_result = full.run("sum_array", list(args))
    assert lean_result.out_args == []
    assert full_result.out_args  # materialized
    assert lean_result.value == full_result.value
    assert lean_result.steps == full_result.steps


# ---------------------------------------------------------------------------
# The cross-check harness itself
# ---------------------------------------------------------------------------

def test_cross_backend_runs_and_agrees(sum_array_source):
    engine = make_engine(parse(sum_array_source), backend="cross")
    assert isinstance(engine, CrossCheckEngine)
    result = engine.run("sum_array", [[1, 2, 3, 4, 5, 6, 7, 8], 4])
    assert result.value == 10


def test_cross_backend_compares_exceptions():
    engine = make_engine(parse(WALK_SRC), backend="cross")
    with pytest.raises(MemoryFault):
        engine.run("poke", [4])


def test_cross_backend_detects_value_divergence(sum_array_source):
    engine = make_engine(parse(sum_array_source), backend="cross")
    real_run = engine.compiled.run

    def tampered(func_name, args):
        result = real_run(func_name, args)
        result.value += 1
        return result

    engine.compiled.run = tampered
    with pytest.raises(BackendMismatch):
        engine.run("sum_array", [[1, 2, 3, 4, 5, 6, 7, 8], 4])


def test_cross_backend_detects_missing_exception(sum_array_source):
    engine = make_engine(parse(WALK_SRC), backend="cross")
    engine.compiled.run = lambda func_name, args: None  # swallows the fault
    with pytest.raises(BackendMismatch):
        engine.run("poke", [4])


def test_backend_mismatch_is_not_interp_error():
    """The harness treats InterpError as a candidate fault; a backend bug
    must never be swallowed that way."""
    assert not issubclass(BackendMismatch, InterpError)
    assert issubclass(BackendMismatch, AssertionError)


# ---------------------------------------------------------------------------
# Backend selection and the compile cache
# ---------------------------------------------------------------------------

def test_make_engine_types(sum_array_source):
    unit = parse(sum_array_source)
    assert isinstance(make_engine(unit, backend="tree"), Interpreter)
    assert isinstance(make_engine(unit, backend="compiled"), CompiledEngine)
    assert isinstance(make_engine(unit, backend="cross"), CrossCheckEngine)
    from repro.interp import BatchCrossCheckEngine, BatchEngine

    assert isinstance(make_engine(unit, backend="batch"), BatchEngine)
    assert isinstance(
        make_engine(unit, backend="batch-cross"), BatchCrossCheckEngine
    )
    with pytest.raises(ValueError):
        make_engine(unit, backend="bogus")


def test_default_backend_roundtrip(sum_array_source):
    unit = parse(sum_array_source)
    original = default_backend()
    try:
        set_default_backend("tree")
        assert isinstance(make_engine(unit), Interpreter)
        set_default_backend("compiled")
        assert isinstance(make_engine(unit), CompiledEngine)
        with pytest.raises(ValueError):
            set_default_backend("bogus")
    finally:
        set_default_backend(original)
    assert set(BACKENDS) == {
        "tree", "compiled", "cross", "batch", "batch-cross"
    }


def test_compiled_program_cached_per_unit(sum_array_source):
    unit = parse(sum_array_source)
    assert compile_program(unit) is compile_program(unit)


def test_clone_recompiles(sum_array_source):
    from repro.cfront.nodes import clone

    unit = parse(sum_array_source)
    program = compile_program(unit)
    copy_unit = clone(unit)
    # The stale compilation must not travel into the clone wholesale: an
    # edited clone executing the original's closures would be a silent
    # miscompile.  Incrementally the clone carries a lineage marker (so
    # unchanged functions can be reused once its content is known), but
    # never the program itself.
    assert not isinstance(
        copy_unit.__dict__.get("_compiled_program"), CompiledProgram
    )
    recompiled = compile_program(copy_unit)
    assert isinstance(recompiled, CompiledProgram)
    assert recompiled is not program
    args = [[1, 2, 3, 4, 5, 6, 7, 8], 8]
    assert (
        run_program(unit, "sum_array", args, backend="compiled").value
        == run_program(copy_unit, "sum_array", args, backend="compiled").value
    )


# ---------------------------------------------------------------------------
# Argument marshalling faults
# ---------------------------------------------------------------------------


class TestArgumentMarshalling:
    """An argument that cannot be marshalled into the parameter's C type
    (e.g. a test tuple shaped for a different signature after a
    ``set_top`` edit) must surface as an InterpError — a faulty
    candidate, never a raw TypeError crashing the harness."""

    @BOTH
    def test_list_for_scalar_is_interp_error(self, backend):
        with pytest.raises(InterpError, match="cannot marshal"):
            run_c("int k(int y) { return y; }", "k", [[1, 2, 3]], backend)

    @BOTH
    def test_string_for_scalar_is_interp_error(self, backend):
        with pytest.raises(InterpError, match="cannot marshal"):
            run_c("int k(int y) { return y; }", "k", ["nope"], backend)

    @BOTH
    def test_message_names_function_and_parameter(self, backend):
        with pytest.raises(InterpError, match=r"k: .*'y'"):
            run_c("int k(int y) { return y; }", "k", [[1]], backend)
