"""Coverage recorder and value-profile tests."""

from hypothesis import given, strategies as st

from repro.cfront import nodes as N
from repro.cfront.parser import parse
from repro.interp import branch_points, run_program
from repro.interp.coverage import CoverageRecorder, ValueProfile, VarRange

from ..conftest import run_c

BRANCHY = """
int classify(int x) {
    if (x > 100) { return 2; }
    if (x > 0) { return 1; }
    if (x < -100) { return -2; }
    if (x < 0) { return -1; }
    return 0;
}
"""


class TestBranchPoints:
    def test_counts_all_conditional_constructs(self):
        src = """
        int f(int x) {
            if (x) { x = 1; }
            while (x < 3) { x++; }
            for (int i = 0; i < 2; i++) { x += i; }
            do { x--; } while (x > 0);
            int y = x > 0 ? 1 : 0;
            int z = x && y;
            int w = x || y;
            return w;
        }
        """
        unit = parse(src)
        assert len(branch_points(unit)) == 7

    def test_for_without_cond_is_not_a_branch(self):
        unit = parse("void f() { for (;;) { break; } }")
        assert len(branch_points(unit)) == 0


class TestCoverageRecorder:
    def test_partial_then_full_coverage(self):
        unit = parse(BRANCHY)
        body = unit.function("classify").body
        recorder = CoverageRecorder()
        r1 = run_program(unit, "classify", [5])
        recorder.merge(r1.coverage)
        partial = recorder.ratio(body)
        assert 0 < partial < 1
        for x in (200, 5, -5, -200, 0):
            recorder.merge(run_program(unit, "classify", [x]).coverage)
        assert recorder.ratio(body) == 1.0

    def test_merge_reports_novelty(self):
        unit = parse(BRANCHY)
        recorder = CoverageRecorder()
        first = run_program(unit, "classify", [5])
        assert recorder.merge(first.coverage)
        again = run_program(unit, "classify", [5])
        assert not recorder.merge(again.coverage)

    def test_would_add(self):
        unit = parse(BRANCHY)
        recorder = CoverageRecorder()
        recorder.merge(run_program(unit, "classify", [5]).coverage)
        novel = run_program(unit, "classify", [-200]).coverage
        assert recorder.would_add(novel)

    def test_ratio_of_branchless_code_is_one(self):
        unit = parse("int f(int x) { return x + 1; }")
        recorder = CoverageRecorder()
        assert recorder.ratio(unit.function("f").body) == 1.0

    def test_covered_and_total_counts(self):
        unit = parse(BRANCHY)
        body = unit.function("classify").body
        recorder = CoverageRecorder()
        recorder.merge(run_program(unit, "classify", [200]).coverage)
        assert recorder.total_branches(body) == 8
        assert recorder.covered_branches(body) == 1  # first if, taken


class TestValueProfile:
    def test_paper_bitwidth_example(self):
        src = """
        int kernel(int a[4], int n) {
            int ret = 0;
            for (int i = 0; i < n; i++) {
                ret = a[i] % 84;
            }
            return ret;
        }
        """
        result = run_c(src, "kernel", [[83, 200, 50, 12], 4])
        ranges = {r.name: r for r in result.profile.ranges.values()}
        assert ranges["ret"].max_abs <= 83

    def test_needs_sign_detection(self):
        src = "int f() { int x = 0; x = -5; x = 3; return x; }"
        result = run_c(src, "f", [])
        rng = next(r for r in result.profile.ranges.values() if r.name == "x")
        assert rng.needs_sign
        assert rng.min_value == -5
        assert rng.max_value == 3

    def test_float_values_marked_non_integer(self):
        src = "float f() { float x = 0.0; x = 1.5; return x; }"
        result = run_c(src, "f", [])
        rng = next(r for r in result.profile.ranges.values() if r.name == "x")
        assert not rng.is_integer

    def test_merge_combines_extremes(self):
        a = ValueProfile()
        b = ValueProfile()
        a.observe(1, "v", 10)
        b.observe(1, "v", -20)
        a.merge(b)
        assert a.ranges[1].min_value == -20
        assert a.ranges[1].max_value == 10
        assert a.ranges[1].samples == 2

    @given(st.lists(st.integers(-10**6, 10**6), min_size=1, max_size=30))
    def test_range_brackets_all_observations(self, values):
        rng = VarRange("v")
        for v in values:
            rng.observe(float(v))
        assert rng.min_value == min(values)
        assert rng.max_value == max(values)
        assert rng.max_abs == max(abs(v) for v in values)

    def test_non_numeric_observations_ignored(self):
        profile = ValueProfile()
        profile.observe(1, "p", object())
        assert profile.range_for(1) is None


class TestProfileStructuralKeys:
    """Profile lookups must survive both unit copies the pipeline makes:
    ``clone()`` (preserves uids — the fast path) and a render→re-parse
    round trip (fresh uids — the structural-fingerprint fallback the
    process executor's wire format forces)."""

    SRC = """
    int helper(int n) {
        int acc = 0;
        for (int i = 0; i < n; i++) { acc += i; }
        return acc;
    }
    int kernel(int n) { return helper(n); }
    """

    def _profiled(self):
        unit = parse(self.SRC)
        result = run_program(unit, "kernel", [9])
        return unit, result.profile

    @staticmethod
    def _decl(unit, name):
        return next(
            node for node in unit.walk()
            if isinstance(node, N.VarDecl) and node.name == name
        )

    def test_clone_resolves_via_uid_fast_path(self):
        unit, profile = self._profiled()
        copy = N.clone(unit)
        rng = profile.range_for_node(copy, self._decl(copy, "acc"))
        assert rng is not None and rng.samples > 0

    def test_reparse_resolves_via_structural_key(self):
        from repro.cfront.printer import render

        unit, profile = self._profiled()
        profile.bind(unit)
        reparsed = parse(render(unit))
        original = profile.range_for_node(unit, self._decl(unit, "acc"))
        recovered = profile.range_for_node(reparsed, self._decl(reparsed, "acc"))
        assert recovered is original
        # Every profiled declaration resolves, not just one.
        for name in ("acc", "i"):
            assert profile.range_for_node(
                reparsed, self._decl(reparsed, name)
            ) is not None

    def test_reparse_without_bind_misses(self):
        from repro.cfront.printer import render

        unit, profile = self._profiled()
        reparsed = parse(render(unit))
        assert profile.range_for_node(
            reparsed, self._decl(reparsed, "acc")
        ) is None

    def test_same_digest_decls_stay_distinct(self):
        """Two structurally identical ``int i`` locals in different
        functions must keep separate ranges after a re-parse (the
        occurrence index disambiguates equal digests)."""
        from repro.cfront.printer import render

        src = """
        int lo(int n) { int v = 0; v = 1; return v + n; }
        int hi(int n) { int v = 0; v = 90; return v + n; }
        int kernel(int n) { return lo(n) + hi(n); }
        """
        unit = parse(src)
        profile = run_program(unit, "kernel", [3]).profile
        profile.bind(unit)
        reparsed = parse(render(unit))
        decls = [
            node for node in reparsed.walk()
            if isinstance(node, N.VarDecl) and node.name == "v"
        ]
        assert len(decls) == 2
        maxima = sorted(
            profile.range_for_node(reparsed, d).max_value for d in decls
        )
        assert maxima == [1.0, 90.0]
