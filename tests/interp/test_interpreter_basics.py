"""Interpreter tests: C semantics of expressions and control flow."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InterpError, InterpLimitExceeded, MemoryFault
from repro.cfront import parse
from repro.interp import ExecLimits, run_program

from ..conftest import run_c


class TestArithmetic:
    def test_basic_ops(self):
        src = "int f(int a, int b) { return a * b + a - b; }"
        assert run_c(src, "f", [6, 4]).value == 26

    def test_division_truncates_toward_zero(self):
        src = "int f(int a, int b) { return a / b; }"
        assert run_c(src, "f", [7, 2]).value == 3
        assert run_c(src, "f", [-7, 2]).value == -3
        assert run_c(src, "f", [7, -2]).value == -3

    def test_modulo_sign_follows_dividend(self):
        src = "int f(int a, int b) { return a % b; }"
        assert run_c(src, "f", [7, 3]).value == 1
        assert run_c(src, "f", [-7, 3]).value == -1
        assert run_c(src, "f", [7, -3]).value == 1

    @given(st.integers(-1000, 1000), st.integers(1, 100))
    def test_div_mod_identity(self, a, b):
        src = "int f(int a, int b) { return a / b * b + a % b; }"
        assert run_c(src, "f", [a, b]).value == a

    def test_division_by_zero_faults(self):
        with pytest.raises(MemoryFault):
            run_c("int f(int a) { return a / 0; }", "f", [1])

    def test_int32_wraparound_on_store(self):
        src = "int f() { int x = 2147483647; x = x + 1; return x; }"
        assert run_c(src, "f", []).value == -2147483648

    def test_unsigned_wraps(self):
        src = "unsigned f() { unsigned x = 0; x = x - 1; return x; }"
        assert run_c(src, "f", []).value == 4294967295

    def test_bitwise_and_shifts(self):
        src = "int f(int x) { return ((x << 2) | 1) & 255 ^ 8; }"
        assert run_c(src, "f", [5]).value == ((5 << 2 | 1) & 255) ^ 8

    def test_float_arithmetic(self):
        src = "float f(float x) { return x * 0.5 + 1.25; }"
        assert run_c(src, "f", [3.0]).value == pytest.approx(2.75)

    def test_float32_store_rounds(self):
        src = "float f() { float x = 0.1; return x; }"
        value = run_c(src, "f", []).value
        assert value != 0.1  # float32 cannot represent 0.1 exactly
        assert value == pytest.approx(0.1, rel=1e-6)

    def test_fpga_uint_wrap_semantics(self):
        src = "int f(int x) { fpga_uint<7> r = x; return r; }"
        assert run_c(src, "f", [83]).value == 83
        assert run_c(src, "f", [128]).value == 0

    def test_mixed_int_float_promotion(self):
        src = "float f(int a) { return a / 2.0; }"
        assert run_c(src, "f", [7]).value == pytest.approx(3.5)

    def test_ternary(self):
        src = "int f(int x) { return x > 0 ? 1 : -1; }"
        assert run_c(src, "f", [5]).value == 1
        assert run_c(src, "f", [-5]).value == -1

    def test_comma_operator(self):
        src = "int f() { int a = 0; int b = (a = 3, a + 1); return b; }"
        assert run_c(src, "f", []).value == 4


class TestShortCircuit:
    def test_and_skips_rhs(self):
        src = """
        static int hits = 0;
        int bump() { hits = hits + 1; return 1; }
        int f(int x) { int r = x && bump(); return hits * 10 + r; }
        """
        assert run_c(src, "f", [0]).value == 0   # bump never ran
        assert run_c(src, "f", [1]).value == 11  # bump ran once

    def test_or_skips_rhs(self):
        src = """
        static int hits = 0;
        int bump() { hits = hits + 1; return 0; }
        int f(int x) { int r = x || bump(); return hits * 10 + r; }
        """
        assert run_c(src, "f", [1]).value == 1
        assert run_c(src, "f", [0]).value == 10


class TestControlFlow:
    def test_nested_loops_with_break_continue(self):
        src = """
        int f() {
            int total = 0;
            for (int i = 0; i < 5; i++) {
                if (i == 3) continue;
                for (int j = 0; j < 5; j++) {
                    if (j > i) break;
                    total += 1;
                }
            }
            return total;
        }
        """
        assert run_c(src, "f", []).value == 1 + 2 + 3 + 5

    def test_do_while_runs_at_least_once(self):
        src = "int f() { int n = 0; do { n++; } while (n < 0); return n; }"
        assert run_c(src, "f", []).value == 1

    def test_while_with_compound_condition(self):
        src = """
        int f(int n) {
            int i = 0;
            while (i < n && i < 10) { i++; }
            return i;
        }
        """
        assert run_c(src, "f", [100]).value == 10
        assert run_c(src, "f", [4]).value == 4

    def test_incdec_pre_post(self):
        src = "int f() { int x = 5; int a = x++; int b = ++x; return a * 100 + b * 10 + x; }"
        assert run_c(src, "f", []).value == 5 * 100 + 7 * 10 + 7

    def test_recursion(self):
        src = "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }"
        assert run_c(src, "fact", [6]).value == 720

    def test_block_scoping_shadows(self):
        src = """
        int f() {
            int x = 1;
            { int x = 2; }
            return x;
        }
        """
        assert run_c(src, "f", []).value == 1

    def test_static_local_persists_across_calls(self):
        src = """
        int counter() { static int n = 0; n = n + 1; return n; }
        int f() { counter(); counter(); return counter(); }
        """
        assert run_c(src, "f", []).value == 3

    def test_statics_reset_between_runs(self):
        src = """
        int counter() { static int n = 0; n = n + 1; return n; }
        int f() { return counter(); }
        """
        unit = parse(src)
        assert run_program(unit, "f", []).value == 1
        assert run_program(unit, "f", []).value == 1  # fresh state per run


class TestLimits:
    def test_step_budget(self):
        src = "int f() { int i = 0; while (1) { i++; } return i; }"
        with pytest.raises(InterpLimitExceeded):
            run_c(src, "f", [], limits=ExecLimits(max_steps=1000))

    def test_recursion_depth_budget(self):
        src = "int f(int n) { return f(n + 1); }"
        with pytest.raises(InterpLimitExceeded):
            run_c(src, "f", [0], limits=ExecLimits(max_depth=32))

    def test_heap_budget(self):
        src = """
        int f() {
            int big[100000];
            return big[0];
        }
        """
        with pytest.raises(InterpLimitExceeded):
            run_c(src, "f", [], limits=ExecLimits(max_heap_cells=100))


class TestCallContract:
    def test_wrong_arity_rejected(self):
        with pytest.raises(InterpError):
            run_c("int f(int a) { return a; }", "f", [1, 2])

    def test_unknown_function_rejected(self):
        with pytest.raises(InterpError):
            run_c("int f() { return 1; }", "g", [])

    def test_undefined_identifier(self):
        with pytest.raises(InterpError):
            run_c("int f() { return mystery; }", "f", [])

    def test_call_to_undefined_function(self):
        with pytest.raises(InterpError):
            run_c("int f() { return g(); }", "f", [])


class TestObservables:
    def test_out_args_reflect_mutation(self, sum_array_source):
        src = """
        void fill(int out[4], int base) {
            for (int i = 0; i < 4; i++) { out[i] = base + i; }
        }
        """
        result = run_c(src, "fill", [[0, 0, 0, 0], 10])
        assert result.out_args[0] == [10, 11, 12, 13]

    def test_observable_is_hashable(self, sum_array_source):
        result = run_c(sum_array_source, "sum_array", [[1, 2, 3, 4, 0, 0, 0, 0], 4])
        obs = result.observable()
        assert hash(obs) == hash(result.observable())
        assert result.value == 10

    def test_steps_grow_with_work(self, sum_array_source):
        small = run_c(sum_array_source, "sum_array", [[1] * 8, 2]).steps
        large = run_c(sum_array_source, "sum_array", [[1] * 8, 8]).steps
        assert large > small
