"""Acceptance: the batch backend stays bit-identical across Table 3.

Mirror of ``test_cross_check_subjects.py`` one level up the tower:
fuzzing each subject under ``backend="batch-cross"`` executes every
generated input through both the closure-compiled engine and the batch
engine and asserts identical observables, step counts, coverage hits
and value profiles.  A divergence raises ``BackendMismatch`` (an
``AssertionError``), failing the campaign outright.
"""

from __future__ import annotations

import pytest

from repro.errors import InterpError
from repro.fuzz import FuzzConfig, fuzz_kernel
from repro.interp import ExecLimits, engine_run_many, make_engine
from repro.subjects import all_subjects

#: Modest CI budget; the benchmark harness replays full corpora with the
#: same identity assertion on every run.
CROSS_EXECS = 120

LIMITS = ExecLimits(max_steps=60_000, max_depth=128)

SUBJECTS = all_subjects()


@pytest.mark.parametrize("subject", SUBJECTS, ids=[s.id for s in SUBJECTS])
def test_fuzz_corpus_batch_cross_checks(subject):
    unit = subject.parse()
    report = fuzz_kernel(
        unit,
        subject.kernel,
        FuzzConfig(max_execs=CROSS_EXECS, plateau_execs=CROSS_EXECS, seed=7),
        seeds=subject.existing_test_list() or None,
        limits=LIMITS,
        backend="batch-cross",
    )
    assert report.execs > 0

    # Replay part of the corpus in HLS mode: wrap/fault translation must
    # agree between the compiled and batch engines too.
    engine = make_engine(
        unit, backend="batch-cross", limits=LIMITS, hls_mode=True
    )
    for test in report.suite(20):
        try:
            engine.run(subject.kernel, test)
        except InterpError:
            pass  # a fault is fine — only divergence is not


@pytest.mark.parametrize("subject", SUBJECTS, ids=[s.id for s in SUBJECTS])
def test_run_many_matches_compiled_on_subject_suite(subject):
    """The pooled batched pass over each subject's existing tests must
    produce the same record stream as the compiled per-input loop."""
    tests = subject.existing_test_list()
    if not tests:
        pytest.skip(f"{subject.id} has no pre-existing test suite")
    unit = subject.parse()
    batch = make_engine(unit, backend="batch", limits=LIMITS)
    compiled = make_engine(unit, backend="compiled", limits=LIMITS)
    native = engine_run_many(batch, subject.kernel, tests)
    looped = engine_run_many(compiled, subject.kernel, tests)
    for n, l in zip(native, looped):
        assert (n.error is None) == (l.error is None)
        if n.error is not None:
            assert type(n.error) is type(l.error)
            assert str(n.error) == str(l.error)
        else:
            assert n.result.value == l.result.value
            assert n.result.out_args == l.result.out_args
            assert n.result.steps == l.result.steps
            assert n.result.coverage.hits == l.result.coverage.hits
