"""Cross-backend equivalence over the generated subject corpus.

The ten Table 3 subjects each exercise one seeded incompatibility; the
generated corpus (:mod:`repro.subjects.generated`) sweeps the rest of
the parseable subset — wrap at every width, fixed-point, streams,
structs, pointer faults, recursion, statics, globals.  Every program is
run under ``tree``, ``compiled`` and ``batch`` and the full observable
surface (value, out args, steps, coverage, fault type and message) must
be identical; the batch backend is additionally required to run every
test through one ``run_many`` call with per-record identity.
"""

from __future__ import annotations

import pytest

from repro.errors import InterpError
from repro.interp import ExecLimits, engine_run_many, make_engine
from repro.subjects import generated_subjects

LIMITS = ExecLimits(max_steps=500_000, max_depth=256)

CORPUS = generated_subjects()


def observe(engine, kernel, test):
    """One execution reduced to its comparable surface."""
    try:
        result = engine.run(kernel, list(test))
    except InterpError as exc:
        return ("fault", type(exc).__name__, str(exc), engine.steps)
    return (
        "ok",
        result.value,
        result.out_args,
        result.steps,
        frozenset(result.coverage.hits),
    )


@pytest.mark.parametrize("gs", CORPUS, ids=[g.name for g in CORPUS])
def test_backends_agree(gs):
    unit = gs.parse()
    engines = {
        backend: make_engine(unit, backend=backend, limits=LIMITS)
        for backend in ("tree", "compiled", "batch")
    }
    saw_fault = False
    for test in gs.tests:
        surfaces = {b: observe(e, gs.kernel, test) for b, e in engines.items()}
        assert surfaces["tree"] == surfaces["compiled"] == surfaces["batch"], (
            f"{gs.name}: backends diverged on {test!r}"
        )
        saw_fault = saw_fault or surfaces["tree"][0] == "fault"
    if gs.faulting:
        assert saw_fault, f"{gs.name}: expected at least one faulting test"


@pytest.mark.parametrize("gs", CORPUS, ids=[g.name for g in CORPUS])
def test_run_many_matches_per_input_runs(gs):
    unit = gs.parse()
    batch = make_engine(unit, backend="batch", limits=LIMITS)
    compiled = make_engine(unit, backend="compiled", limits=LIMITS)
    records = engine_run_many(batch, gs.kernel, gs.tests)
    assert len(records) == len(gs.tests)
    for test, record in zip(gs.tests, records):
        expected = observe(compiled, gs.kernel, test)
        if record.error is not None:
            assert expected[0] == "fault"
            assert type(record.error).__name__ == expected[1]
            assert str(record.error) == expected[2]
        else:
            assert expected == (
                "ok",
                record.result.value,
                record.result.out_args,
                record.result.steps,
                frozenset(record.result.coverage.hits),
            )


def test_corpus_generates_without_fallbacks():
    """The corpus exists to exercise the batch code generator: if a
    program silently fell back to pooled closures, its coverage claim
    would be hollow.  Every function of every program must generate."""
    for gs in CORPUS:
        engine = make_engine(gs.parse(), backend="batch", limits=LIMITS)
        assert engine.program.fallback_functions == 0, (
            f"{gs.name}: batch codegen fell back"
        )
        assert engine.program.generated > 0


def test_corpus_shape():
    names = [g.name for g in CORPUS]
    assert len(names) == len(set(names)), "duplicate corpus names"
    assert len(names) >= 20
    assert all(g.tests for g in CORPUS), "every program needs inputs"
