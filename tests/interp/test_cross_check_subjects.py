"""Acceptance: both backends stay bit-identical across the Table 3 subjects.

Fuzzing each subject under ``backend="cross"`` executes every generated
input through both the tree-walker and the closure-compiled engine and
asserts identical observables, step counts, coverage hits and value
profiles.  :class:`BackendMismatch` is an ``AssertionError``, not an
``InterpError``, so a divergence is never swallowed as an ordinary
candidate fault — it fails the fuzz campaign (and this test) outright.
"""

from __future__ import annotations

import pytest

from repro.fuzz import FuzzConfig, fuzz_kernel, get_kernel_seed
from repro.interp import ExecLimits, make_engine
from repro.errors import InterpError
from repro.subjects import all_subjects

#: Modest CI budget; the ad-hoc sweep used during development ran each
#: subject at several hundred executions with zero mismatches.
CROSS_EXECS = 120

LIMITS = ExecLimits(max_steps=60_000, max_depth=128)

SUBJECTS = all_subjects()


@pytest.mark.parametrize("subject", SUBJECTS, ids=[s.id for s in SUBJECTS])
def test_fuzz_corpus_cross_checks(subject):
    unit = subject.parse()
    seeds = subject.existing_test_list() or None
    if subject.host:
        try:
            seeds = get_kernel_seed(
                unit, subject.host, subject.kernel, list(subject.host_args),
                backend="cross",
            ) + (seeds or [])
        except InterpError:
            pass
    report = fuzz_kernel(
        unit,
        subject.kernel,
        FuzzConfig(max_execs=CROSS_EXECS, plateau_execs=CROSS_EXECS, seed=7),
        seeds=seeds,
        limits=LIMITS,
        backend="cross",
    )
    assert report.execs > 0

    # Replay part of the corpus in HLS mode: the wrap/fault translation
    # path must agree between backends too.
    engine = make_engine(unit, backend="cross", limits=LIMITS, hls_mode=True)
    for test in report.suite(20):
        try:
            engine.run(subject.kernel, test)
        except InterpError:
            pass  # a fault is fine — only divergence is not
