"""``run_many`` semantics: pooling must never leak state between inputs.

The batch backend reuses one Runtime, one global frame and (when the
unit's initializers are provably effect-free) a by-value snapshot of the
globals across the whole batch.  These tests pin the contract down:

* a faulting input yields an error record and its batch siblings are
  bit-identical to fresh single-input runs (fault isolation);
* ``max_faults`` aborts in input order and marks the remainder skipped
  without executing it;
* statics, captured calls, coverage and step counters reset per input;
* the global snapshot/replay fast path reproduces the rebuild exactly,
  including for units whose initializers are *not* poolable;
* the generic :func:`engine_run_many` loop gives any backend the same
  record contract the batch backend implements natively.
"""

from __future__ import annotations

import pytest

from repro.errors import HlsSimulationFault, InterpLimitExceeded, MemoryFault
from repro.cfront.parser import parse
from repro.interp import (
    BatchRecord,
    ExecLimits,
    engine_run_many,
    make_engine,
)

LIMITS = ExecLimits(max_steps=200_000, max_depth=64)

OOB_SRC = """
int pick(int xs[4], int idx) {
    return xs[idx] * 10;
}
"""

SPIN_SRC = """
int spin(int n) {
    int total = 0;
    for (int i = 0; i < n; i++) {
        total += i;
    }
    return total;
}
"""

STATIC_SRC = """
int tick(int step) {
    static int counter = 100;
    counter += step;
    return counter;
}
"""

GLOBAL_POOLABLE_SRC = """
int BASE = 40;
int TABLE[4] = {1, 2, 4, 8};

int global_mix(int i) {
    TABLE[i & 3] += BASE;
    return TABLE[i & 3];
}
"""

GLOBAL_UNPOOLABLE_SRC = """
int GATE = 1 && 2;

int gated(int x) {
    return GATE + x;
}
"""

CAPTURE_SRC = """
int inner(int x) {
    return x * 2;
}

int outer(int a, int b) {
    return inner(a) + inner(b);
}
"""

GOOD = [10, 20, 30, 40]


def batch_engine(src, **kwargs):
    return make_engine(
        parse(src), backend="batch", limits=LIMITS, **kwargs
    )


def test_fault_isolation_mid_batch():
    """Input 1 faults; inputs 0 and 2 must match fresh single runs."""
    engine = batch_engine(OOB_SRC)
    fresh = batch_engine(OOB_SRC)
    tests = [[GOOD, 1], [GOOD, 9], [GOOD, 3]]
    records = engine.run_many("pick", tests)
    assert [r.error is not None for r in records] == [False, True, False]
    assert isinstance(records[1].error, MemoryFault)
    for test, record in zip(tests, records):
        if record.error is not None:
            with pytest.raises(MemoryFault) as exc_info:
                fresh.run("pick", list(test))
            assert str(exc_info.value) == str(record.error)
        else:
            result = fresh.run("pick", list(test))
            assert record.result.value == result.value
            assert record.result.steps == result.steps
            assert record.result.coverage.hits == result.coverage.hits


def test_step_budget_fault_does_not_poison_siblings():
    tight = ExecLimits(max_steps=200, max_depth=64)
    engine = make_engine(parse(SPIN_SRC), backend="batch", limits=tight)
    records = engine.run_many("spin", [[3], [10_000], [3]])
    assert records[0].error is None and records[2].error is None
    assert isinstance(records[1].error, InterpLimitExceeded)
    # The sibling after the blown budget sees a fully reset counter.
    assert records[0].result.steps == records[2].result.steps
    assert records[0].result.value == records[2].result.value == 3


def test_max_faults_skips_remainder_in_order():
    engine = batch_engine(OOB_SRC)
    tests = [[GOOD, 9], [GOOD, 0], [GOOD, 9], [GOOD, 1], [GOOD, 2]]
    records = engine.run_many("pick", tests, max_faults=2)
    assert records[0].error is not None
    assert records[1].error is None
    assert records[2].error is not None
    # Budget exhausted: everything after the second fault is skipped,
    # even inputs that would have succeeded.
    assert records[3].skipped and records[4].skipped
    assert records[3].result is None and records[3].error is None


def test_generic_loop_matches_native_run_many():
    """The compiled backend through engine_run_many must produce the
    same record stream the batch backend builds natively."""
    tests = [[GOOD, 1], [GOOD, 9], [GOOD, 3], [GOOD, 8], [GOOD, 0]]
    native = batch_engine(OOB_SRC).run_many("pick", tests, max_faults=2)
    looped = engine_run_many(
        make_engine(parse(OOB_SRC), backend="compiled", limits=LIMITS),
        "pick", tests, max_faults=2,
    )
    assert len(native) == len(looped) == len(tests)
    for n, l in zip(native, looped):
        assert n.skipped == l.skipped
        assert (n.error is None) == (l.error is None)
        if n.error is not None:
            assert type(n.error) is type(l.error)
            assert str(n.error) == str(l.error)
        elif not n.skipped:
            assert n.result.value == l.result.value
            assert n.result.steps == l.result.steps


def test_statics_reset_between_inputs():
    """A static local must not smuggle state from one input to the next:
    every input starts from the initializer, exactly as a fresh run."""
    engine = batch_engine(STATIC_SRC)
    records = engine.run_many("tick", [[5], [5], [7]])
    assert [r.result.value for r in records] == [105, 105, 107]


def test_pooled_globals_reset_between_inputs():
    """The kernel mutates a global array; the snapshot/replay path must
    restore the pristine values (and the init step charges) per input."""
    engine = batch_engine(GLOBAL_POOLABLE_SRC)
    fresh = batch_engine(GLOBAL_POOLABLE_SRC)
    records = engine.run_many("global_mix", [[0], [0], [2], [0]])
    assert [r.result.value for r in records] == [41, 41, 44, 41]
    single = fresh.run("global_mix", [0])
    assert records[0].result.steps == single.steps
    assert records[-1].result.steps == single.steps


def test_unpoolable_globals_rebuild_per_input():
    """``1 && 2`` is outside the snapshot whitelist (it records branch
    coverage), so the batch falls back to rebuilding globals — results
    must still match fresh runs exactly."""
    unit = parse(GLOBAL_UNPOOLABLE_SRC)
    engine = make_engine(unit, backend="batch", limits=LIMITS)
    assert not engine.program.poolable_globals
    # Same unit: coverage keys are node uids, so the comparison below
    # needs both engines looking at one parse.
    fresh = make_engine(unit, backend="batch", limits=LIMITS)
    records = engine.run_many("gated", [[1], [2]])
    for record, x in zip(records, [1, 2]):
        single = fresh.run("gated", [x])
        assert record.result.value == single.value == 1 + x
        assert record.result.steps == single.steps
        assert record.result.coverage.hits == single.coverage.hits


def test_captured_calls_reset_per_input():
    engine = batch_engine(CAPTURE_SRC, capture_calls="inner")
    records = engine.run_many("outer", [[1, 2], [7, 8]])
    assert records[0].result.captured_args == [[1], [2]]
    assert records[1].result.captured_args == [[7], [8]]
    # The engine attribute mirrors the *last* input, like repeated run().
    assert engine.captured == [[7], [8]]


def test_hls_mode_translates_oob_faults():
    engine = batch_engine(OOB_SRC, hls_mode=True)
    records = engine.run_many("pick", [[GOOD, 9], [GOOD, 0]])
    assert isinstance(records[0].error, HlsSimulationFault)
    assert isinstance(records[0].error.__cause__, MemoryFault)
    assert records[1].error is None


def test_unknown_function_faults_every_input():
    engine = batch_engine(OOB_SRC)
    records = engine.run_many("nope", [[GOOD, 0], [GOOD, 1]])
    assert all(r.error is not None for r in records)
    assert "no function named 'nope'" in str(records[0].error)


def test_empty_batch():
    assert batch_engine(OOB_SRC).run_many("pick", []) == []


def test_record_repr_shapes():
    assert "skipped" in repr(BatchRecord(skipped=True))
