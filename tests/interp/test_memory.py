"""Memory-model tests: pointers, heap, structs, streams, faults."""

import pytest

from repro.errors import HlsSimulationFault, MemoryFault
from repro.cfront import parse
from repro.cfront import typesys as T
from repro.interp import run_program
from repro.interp.memory import (
    MemBlock,
    NULL,
    Pointer,
    StreamValue,
    StructValue,
    c_to_python,
    coerce,
    default_value,
    python_to_c,
)

from ..conftest import run_c


class TestPointers:
    def test_address_of_and_deref(self):
        src = """
        int f() {
            int x = 7;
            int *p = &x;
            *p = 9;
            return x;
        }
        """
        assert run_c(src, "f", []).value == 9

    def test_pointer_arithmetic_over_array(self):
        src = """
        int f(int a[4]) {
            int *p = a;
            p = p + 2;
            return *p;
        }
        """
        assert run_c(src, "f", [[10, 20, 30, 40]]).value == 30

    def test_pointer_difference(self):
        src = """
        int f(int a[8]) {
            int *p = a + 6;
            int *q = a + 2;
            return p - q;
        }
        """
        assert run_c(src, "f", [[0] * 8]).value == 4

    def test_pointer_comparison(self):
        src = """
        int f(int a[4]) {
            int *p = a;
            int *q = a + 1;
            return (p < q) * 10 + (p == a);
        }
        """
        assert run_c(src, "f", [[0] * 4]).value == 11

    def test_null_comparisons(self):
        src = """
        int f() {
            int *p = 0;
            if (p == 0) { return 1; }
            return 0;
        }
        """
        assert run_c(src, "f", []).value == 1

    def test_null_deref_faults(self):
        src = "int f() { int *p = 0; return *p; }"
        with pytest.raises(MemoryFault):
            run_c(src, "f", [])

    def test_out_of_bounds_faults(self):
        src = "int f(int a[4]) { return a[9]; }"
        with pytest.raises(MemoryFault):
            run_c(src, "f", [[1, 2, 3, 4]])

    def test_negative_index_faults(self):
        src = "int f(int a[4]) { return a[-1]; }"
        with pytest.raises(MemoryFault):
            run_c(src, "f", [[1, 2, 3, 4]])

    def test_cross_block_comparison_faults(self):
        src = """
        int f(int a[2], int b[2]) {
            int *p = a;
            int *q = b;
            return p < q;
        }
        """
        with pytest.raises(MemoryFault):
            run_c(src, "f", [[0, 0], [0, 0]])


class TestHeap:
    def test_malloc_cast_types_block(self):
        src = """
        struct Node { int v; struct Node *next; };
        int f() {
            struct Node *n = (struct Node *)malloc(sizeof(struct Node));
            n->v = 42;
            return n->v;
        }
        """
        assert run_c(src, "f", []).value == 42

    def test_use_after_free_faults(self):
        src = """
        struct Node { int v; struct Node *next; };
        int f() {
            struct Node *n = (struct Node *)malloc(sizeof(struct Node));
            free(n);
            return n->v;
        }
        """
        with pytest.raises(MemoryFault):
            run_c(src, "f", [])

    def test_double_free_faults(self):
        src = """
        struct Node { int v; struct Node *next; };
        int f() {
            struct Node *n = (struct Node *)malloc(sizeof(struct Node));
            free(n);
            free(n);
            return 0;
        }
        """
        with pytest.raises(MemoryFault):
            run_c(src, "f", [])

    def test_malloc_array_of_structs(self):
        src = """
        struct P { int x; };
        int f() {
            struct P *arr = (struct P *)malloc(3 * sizeof(struct P));
            arr[2].x = 5;
            return arr[2].x + arr[0].x;
        }
        """
        assert run_c(src, "f", []).value == 5


class TestStructs:
    def test_nested_member_chain(self, tree_source):
        result = run_c(tree_source, "kernel", [[5, 3, 8, 1] + [0] * 12, 4])
        assert result.value == 17

    def test_struct_field_assignment(self):
        src = """
        struct P { int x; int y; };
        int f() {
            struct P p;
            p.x = 3;
            p.y = 4;
            return p.x * p.x + p.y * p.y;
        }
        """
        assert run_c(src, "f", []).value == 25

    def test_union_members_share_storage_loosely(self):
        # The model stores union fields independently (no bit punning);
        # writing one field then reading it back works.
        src = """
        union U { int i; float f; };
        int g() {
            union U u;
            u.i = 7;
            return u.i;
        }
        """
        assert run_c(src, "g", []).value == 7

    def test_missing_field_faults(self):
        src = """
        struct P { int x; };
        int f() {
            struct P p;
            return p.zzz;
        }
        """
        with pytest.raises(MemoryFault):
            run_c(src, "f", [])


class TestStreams:
    def test_write_then_read_fifo_order(self):
        src = """
        int f() {
            hls::stream<unsigned> s;
            s.write(1);
            s.write(2);
            unsigned a = s.read();
            unsigned b = s.read();
            return a * 10 + b;
        }
        """
        assert run_c(src, "f", []).value == 12

    def test_empty_check(self):
        src = """
        int f() {
            hls::stream<unsigned> s;
            int before = s.empty();
            s.write(5);
            int after = s.empty();
            return before * 10 + after;
        }
        """
        assert run_c(src, "f", []).value == 10

    def test_read_empty_faults(self):
        src = "unsigned f() { hls::stream<unsigned> s; return s.read(); }"
        with pytest.raises(HlsSimulationFault):
            run_c(src, "f", [])

    def test_stream_kernel_param(self):
        src = """
        void f(hls::stream<unsigned> &in, hls::stream<unsigned> &out) {
            while (!in.empty()) {
                out.write(in.read() * 2);
            }
        }
        """
        result = run_c(src, "f", [[1, 2, 3], []])
        assert result.out_args[1] == [2, 4, 6]
        assert result.out_args[0] == []


class TestConversions:
    def test_python_to_c_round_trip_array(self):
        block = python_to_c([1, 2, 3], T.ArrayType(T.INT, 3), {})
        assert isinstance(block, MemBlock)
        assert c_to_python(block) == [1, 2, 3]

    def test_python_to_c_clamps_via_coerce(self):
        block = python_to_c([300], T.ArrayType(T.UCHAR, 1), {})
        assert block.cells[0] == 300 - 256

    def test_coerce_fpga_float_quantizes(self):
        narrow = T.FpgaFloatType(8, 10)
        value = coerce(1.0 + 2**-11, narrow)
        assert value != 1.0 + 2**-11

    def test_coerce_wide_fpga_float_exact(self):
        wide = T.FpgaFloatType(8, 71)
        assert coerce(0.1, wide) == 0.1

    def test_default_values(self):
        assert default_value(T.INT) == 0
        assert default_value(T.FLOAT) == 0.0
        assert default_value(T.PointerType(T.INT)) is NULL
        struct = default_value(
            T.StructType("S", (T.StructField("x", T.INT),))
        )
        assert isinstance(struct, StructValue)
        assert struct.fields == {"x": 0}

    def test_c_to_python_pointer(self):
        block = MemBlock(T.INT, [0, 0], is_array=True)
        assert c_to_python(Pointer(block, 1)) == ("ptr", 1)
        assert c_to_python(NULL) is None

    def test_struct_value_copy_is_shallow_independent(self):
        s = StructValue("S", {"x": 1})
        c = s.copy()
        c.fields["x"] = 2
        assert s.fields["x"] == 1

    def test_stream_value_fifo(self):
        s = StreamValue(T.UINT)
        s.write(1)
        s.write(2)
        assert s.read() == 1
        assert not s.empty()
        assert s.total_writes == 2
