"""Builtin library function tests."""

import math

import pytest

from repro.errors import MemoryFault

from ..conftest import run_c


@pytest.mark.parametrize(
    "expr, args, expected",
    [
        ("abs(x)", [-5], 5),
        ("labs(x)", [-9], 9),
    ],
)
def test_integer_builtins(expr, args, expected):
    src = f"int f(int x) {{ return {expr}; }}"
    assert run_c(src, "f", args).value == expected


@pytest.mark.parametrize(
    "expr, arg, expected",
    [
        ("fabs(x)", -2.5, 2.5),
        ("sqrt(x)", 9.0, 3.0),
        ("floor(x)", 2.7, 2.0),
        ("ceil(x)", 2.1, 3.0),
        ("sin(x)", 0.0, 0.0),
        ("cos(x)", 0.0, 1.0),
        ("exp(x)", 0.0, 1.0),
        ("log(x)", 1.0, 0.0),
    ],
)
def test_float_builtins(expr, arg, expected):
    src = f"double f(double x) {{ return {expr}; }}"
    assert run_c(src, "f", [arg]).value == pytest.approx(expected)


@pytest.mark.parametrize(
    "expr, args, expected",
    [
        ("pow(a, b)", [2.0, 10.0], 1024.0),
        ("fmin(a, b)", [1.0, 2.0], 1.0),
        ("fmax(a, b)", [1.0, 2.0], 2.0),
        ("fmod(a, b)", [7.5, 2.0], 1.5),
    ],
)
def test_two_arg_builtins(expr, args, expected):
    src = f"double f(double a, double b) {{ return {expr}; }}"
    assert run_c(src, "f", args).value == pytest.approx(expected)


def test_printf_is_swallowed():
    src = 'int f() { printf("x=%d", 3); return 1; }'
    assert run_c(src, "f", []).value == 1


def test_assert_builtin_faults_on_false():
    src = "int f(int x) { assert(x > 0); return x; }"
    assert run_c(src, "f", [3]).value == 3
    with pytest.raises(MemoryFault):
        run_c(src, "f", [-1])


def test_malloc_negative_size_faults():
    src = "int f() { int *p = (int *)malloc(-4); return 0; }"
    with pytest.raises(MemoryFault):
        run_c(src, "f", [])


def test_free_of_null_is_noop():
    src = "int f() { int *p = 0; free(p); return 1; }"
    assert run_c(src, "f", []).value == 1


def test_free_of_interior_pointer_faults():
    src = """
    struct P { int x; };
    int f() {
        struct P *p = (struct P *)malloc(2 * sizeof(struct P));
        free(p + 1);
        return 0;
    }
    """
    with pytest.raises(MemoryFault):
        run_c(src, "f", [])
