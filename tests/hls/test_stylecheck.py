"""Style checker tests: placement rules and the cheap-gate contract."""

from repro.cfront import parse
from repro.hls import STYLE_CHECK_SECONDS, check_style
from repro.hls.compiler import COMPILE_BASE_SECONDS


def violations(source):
    return check_style(parse(source, top_name="kernel"))


class TestPlacement:
    def test_clean_program_has_no_violations(self):
        src = """
        void kernel(int a[8]) {
            #pragma HLS dataflow
            for (int i = 0; i < 8; i++) {
                #pragma HLS pipeline II=1
                a[i] = i;
            }
        }
        """
        assert violations(src) == []

    def test_pipeline_outside_loop_rejected(self):
        src = """
        void kernel(int a[8]) {
            #pragma HLS pipeline II=1
            a[0] = 1;
        }
        """
        assert any("head of a loop body" in str(v) for v in violations(src))

    def test_pipeline_before_loop_rejected(self):
        src = """
        void kernel(int a[8]) {
            int x = 0;
            #pragma HLS unroll factor=2
            for (int i = 0; i < 8; i++) { a[i] = x; }
        }
        """
        assert any("head of a loop body" in str(v) for v in violations(src))

    def test_pragma_after_statement_in_loop_rejected(self):
        src = """
        void kernel(int a[8]) {
            for (int i = 0; i < 8; i++) {
                a[i] = i;
                #pragma HLS pipeline II=1
            }
        }
        """
        assert violations(src)

    def test_dataflow_in_nested_block_rejected(self):
        src = """
        void kernel(int a[8]) {
            if (a[0]) {
                #pragma HLS dataflow
                a[1] = 2;
            }
        }
        """
        assert any("function top level" in str(v) for v in violations(src))

    def test_pragma_outside_any_function_rejected(self):
        src = """
        #pragma HLS pipeline II=1
        void kernel(int a[4]) { a[0] = 1; }
        """
        assert any("outside any function" in str(v) for v in violations(src))


class TestDirectiveValidity:
    def test_unknown_directive_rejected(self):
        src = """
        void kernel(int a[4]) {
            for (int i = 0; i < 4; i++) {
                #pragma HLS hyperpipeline
                a[i] = i;
            }
        }
        """
        assert any("unknown HLS directive" in str(v) for v in violations(src))

    def test_non_hls_pragma_ignored(self):
        src = """
        void kernel(int a[4]) {
            #pragma once
            a[0] = 1;
        }
        """
        assert violations(src) == []

    def test_partition_requires_known_array(self):
        src = """
        void kernel(int a[4]) {
            #pragma HLS array_partition variable=ghost factor=2
            a[0] = 1;
        }
        """
        assert any("unknown array" in str(v) for v in violations(src))

    def test_partition_requires_variable_option(self):
        src = """
        void kernel(int a[4]) {
            #pragma HLS array_partition factor=2
            a[0] = 1;
        }
        """
        assert any("requires variable=" in str(v) for v in violations(src))

    def test_partition_sees_params_globals_and_locals(self):
        src = """
        static int g[8];
        void kernel(int a[4]) {
            int local[4];
            #pragma HLS array_partition variable=g factor=2
            #pragma HLS array_partition variable=a factor=2
            #pragma HLS array_partition variable=local factor=2
            a[0] = local[0] + g[0];
        }
        """
        assert violations(src) == []

    def test_nonpositive_factors_rejected(self):
        src = """
        void kernel(int a[4]) {
            for (int i = 0; i < 4; i++) {
                #pragma HLS unroll factor=0
                a[i] = i;
            }
        }
        """
        assert any("factor must be positive" in str(v) for v in violations(src))


class TestCostContract:
    def test_style_check_is_orders_cheaper_than_compile(self):
        """The entire §5.3 optimization rests on this asymmetry."""
        assert STYLE_CHECK_SECONDS * 50 < COMPILE_BASE_SECONDS
