"""HLS co-simulation, device model and simulated-clock tests."""

import pytest

from repro.cfront import parse
from repro.hls import (
    DEVICES,
    SimulatedClock,
    SolutionConfig,
    simulate,
)
from repro.hls.clock import ACT_SIMULATION
from repro.hls.platform import ResourceUsage


class TestSimulate:
    SRC = """
    int kernel(int a[4], int n) {
        if (n > 4) { n = 4; }
        int total = 0;
        for (int i = 0; i < n; i++) { total += a[i]; }
        return total;
    }
    """

    def test_outcomes_match_functional_semantics(self):
        unit = parse(self.SRC, top_name="kernel")
        report = simulate(
            unit, SolutionConfig(top_name="kernel"), [[[1, 2, 3, 4], 4]]
        )
        assert report.outcomes[0].ok
        value, _out = report.outcomes[0].observable
        assert value == 10

    def test_faulting_test_recorded_not_raised(self):
        unit = parse(self.SRC, top_name="kernel")
        report = simulate(
            unit, SolutionConfig(top_name="kernel"), [[[1, 2], 4]]
        )
        assert report.faults == 1
        assert not report.outcomes[0].ok
        assert "out of bounds" in report.outcomes[0].fault

    def test_clock_charged_per_test(self):
        unit = parse(self.SRC, top_name="kernel")
        clock = SimulatedClock()
        simulate(
            unit,
            SolutionConfig(top_name="kernel"),
            [[[1, 2, 3, 4], 4]] * 5,
            clock=clock,
        )
        assert clock.count(ACT_SIMULATION) == 1
        assert clock.seconds == pytest.approx(10.0)

    def test_fault_budget_short_circuits(self):
        unit = parse(self.SRC, top_name="kernel")
        bad_test = [[[1, 2], 4]]  # out-of-bounds on every run
        report = simulate(
            unit, SolutionConfig(top_name="kernel"), bad_test * 10,
            max_faults=3,
        )
        assert report.faults == 3  # only the executed tests faulted...
        assert report.skipped_tests == 7  # ...the rest never ran
        skipped = [o for o in report.outcomes if o.skipped]
        assert len(skipped) == 7
        assert all(not o.ok for o in skipped)

    def test_fault_budget_ignores_passing_tests(self):
        unit = parse(self.SRC, top_name="kernel")
        good = [[[1, 2, 3, 4], 4]]
        report = simulate(
            unit, SolutionConfig(top_name="kernel"), good * 5, max_faults=1
        )
        assert report.faults == 0
        assert all(o.ok for o in report.outcomes)

    def test_latency_comes_from_schedule(self):
        unit = parse(self.SRC, top_name="kernel")
        report = simulate(unit, SolutionConfig(top_name="kernel"), [])
        assert report.schedule is not None
        assert report.kernel_latency_ns > 0


class TestSimulatedClock:
    def test_accumulates_by_activity(self):
        clock = SimulatedClock()
        clock.charge("a", 10.0)
        clock.charge("a", 5.0)
        clock.charge("b", 1.0)
        assert clock.seconds == 16.0
        assert clock.by_activity["a"] == 15.0
        assert clock.count("a") == 2
        assert clock.minutes == pytest.approx(16.0 / 60.0)
        assert clock.hours == pytest.approx(16.0 / 3600.0)

    def test_reset(self):
        clock = SimulatedClock()
        clock.charge("a", 3.0)
        clock.reset()
        assert clock.seconds == 0.0
        assert clock.count("a") == 0


class TestPlatform:
    def test_known_devices(self):
        assert "xcvu9p" in DEVICES
        assert DEVICES["xcvu9p"].dsps == 6840

    def test_solution_validation(self):
        good = SolutionConfig(top_name="k")
        assert good.validate() == []
        assert SolutionConfig(top_name="").validate()
        assert SolutionConfig(top_name="k", device="nope").validate()
        assert SolutionConfig(top_name="k", clock_period_ns=-1).validate()
        assert SolutionConfig(top_name="k", clock_period_ns=0.5).validate()

    def test_with_helpers_produce_new_configs(self):
        base = SolutionConfig(top_name="a")
        assert base.with_top("b").top_name == "b"
        assert base.with_clock(5.0).clock_period_ns == 5.0
        assert base.with_device("xc7z020").device == "xc7z020"
        assert base.top_name == "a"  # frozen original unchanged

    def test_resource_usage_fits_and_overflows(self):
        device = DEVICES["xc7z020"]
        small = ResourceUsage(luts=10, ffs=10, bram_36k=1, dsps=1)
        assert small.fits(device)
        big = ResourceUsage(luts=10**9)
        assert not big.fits(device)
        assert big.overflows(device)[0][0] == "LUT"

    def test_resource_scaling_shares_memories(self):
        usage = ResourceUsage(luts=10, ffs=10, bram_36k=4, dsps=2)
        scaled = usage.scaled(4)
        assert scaled.luts == 40
        assert scaled.bram_36k == 4  # BRAMs are shared, not duplicated
