"""Pragma parsing tests."""

from repro.cfront import nodes as N
from repro.cfront.parser import parse
from repro.hls.pragmas import (
    HlsPragma,
    collect_pragmas,
    function_pragmas,
    has_dataflow,
    loop_pragmas,
    make_pragma_stmt,
    parse_pragma,
)


def pragma_of(text):
    return parse_pragma(N.Pragma(text=text))


class TestParsePragma:
    def test_directive_and_options(self):
        p = pragma_of("HLS array_partition variable=buf factor=4")
        assert p.directive == "array_partition"
        assert p.variable == "buf"
        assert p.factor == 4

    def test_flag_option_without_value(self):
        p = pragma_of("HLS array_partition variable=a complete")
        assert "complete" in p.options

    def test_case_insensitive_hls_prefix(self):
        assert pragma_of("hls dataflow").directive == "dataflow"

    def test_non_hls_pragma_is_none(self):
        assert pragma_of("once") is None

    def test_pipeline_ii(self):
        p = pragma_of("HLS pipeline II=2")
        assert p.int_option("ii") == 2

    def test_malformed_int_option_defaults(self):
        p = pragma_of("HLS unroll factor=lots")
        assert p.factor == 0

    def test_render_round_trip(self):
        p = pragma_of("HLS unroll factor=8")
        back = parse_pragma(make_pragma_stmt(p))
        assert (back.directive, back.options) == (p.directive, p.options)


SRC = """
void kernel(int a[8]) {
    #pragma HLS dataflow
    for (int i = 0; i < 8; i++) {
        #pragma HLS pipeline II=1
        #pragma HLS loop_tripcount min=1 max=8
        a[i] = i;
    }
}
"""


class TestCollection:
    def test_collect_all(self):
        unit = parse(SRC, top_name="kernel")
        assert len(collect_pragmas(unit)) == 3

    def test_function_pragmas_top_level_only(self):
        unit = parse(SRC, top_name="kernel")
        func = unit.function("kernel")
        top = function_pragmas(func)
        assert [p.directive for p in top] == ["dataflow"]

    def test_loop_pragmas_head_only(self):
        unit = parse(SRC, top_name="kernel")
        func = unit.function("kernel")
        loop = func.body.items[1]
        head = loop_pragmas(loop.body)
        assert [p.directive for p in head] == ["pipeline", "loop_tripcount"]

    def test_loop_pragmas_stop_at_first_statement(self):
        src = """
        void kernel(int a[4]) {
            for (int i = 0; i < 4; i++) {
                a[i] = i;
                #pragma HLS pipeline II=1
            }
        }
        """
        unit = parse(src, top_name="kernel")
        loop = unit.function("kernel").body.items[0]
        assert loop_pragmas(loop.body) == []

    def test_has_dataflow(self):
        unit = parse(SRC, top_name="kernel")
        assert has_dataflow(unit.function("kernel"))
        plain = parse("void f() {}", top_name="f")
        assert not has_dataflow(plain.function("f"))
