"""Diagnostic object and factory tests."""

import pytest

from repro.hls.diagnostics import (
    CompileReport,
    Diagnostic,
    ErrorType,
    FORUM_PROPORTIONS,
    config_error,
    dataflow_check_error,
    dynamic_alloc_error,
    loop_bound_error,
    missing_cast_error,
    overload_error,
    partition_factor_error,
    pointer_error,
    presynthesis_error,
    recursion_error,
    resource_error,
    stream_storage_error,
    struct_error,
    top_function_error,
    unknown_size_error,
    unsupported_type_error,
)

ALL_FACTORIES = [
    recursion_error("f", 1),
    dynamic_alloc_error("x", 2),
    unknown_size_error("buf", 3),
    pointer_error("p", 4),
    unsupported_type_error("x", "long double", 5),
    missing_cast_error("x", 6),
    overload_error("x", 7),
    dataflow_check_error("data", 8),
    partition_factor_error("A", 13, 4, 9),
    presynthesis_error("bad", "f", 10),
    loop_bound_error("f", 11),
    struct_error("If2", 12),
    stream_storage_error("tmp", 13),
    top_function_error("main"),
    config_error("bad clock"),
    resource_error("DSP", 10_000, 6_840),
]


def test_every_factory_produces_an_error_with_a_code():
    for diag in ALL_FACTORIES:
        assert diag.severity == "error"
        assert diag.code
        assert diag.message
        assert isinstance(diag.error_type, ErrorType)


def test_str_follows_vivado_format():
    text = str(recursion_error("traverse", 1))
    assert text.startswith("ERROR: [XFORM 202-876]")
    assert "recursive functions are not supported" in text


def test_paper_example_messages():
    # Table 1's quoted symptoms appear in the factory output.
    assert "dynamic memory allocation" in dynamic_alloc_error("v", 0).message
    assert "unknown size at compile time" in unknown_size_error("v", 0).message
    assert "failed dataflow checking" in dataflow_check_error("data", 0).message
    assert "unsynthesizable struct type" in struct_error("If2", 0).message
    assert "Cannot find the top function" in top_function_error("t").message


def test_each_family_has_a_factory():
    covered = {d.error_type for d in ALL_FACTORIES}
    assert covered == set(ErrorType)


def test_forum_proportions_sum_to_one():
    assert sum(FORUM_PROPORTIONS.values()) == pytest.approx(1.0)


class TestCompileReport:
    def test_ok_and_filtering(self):
        warn = Diagnostic(
            code="W", message="meh", error_type=ErrorType.TOP_FUNCTION,
            severity="warning",
        )
        err = top_function_error("x")
        report = CompileReport(diagnostics=[warn, err])
        assert not report.ok
        assert report.errors == [err]
        assert report.errors_of(ErrorType.TOP_FUNCTION) == [err]
        assert report.errors_of(ErrorType.STRUCT_AND_UNION) == []

    def test_warnings_only_is_ok(self):
        warn = Diagnostic(
            code="W", message="meh", error_type=ErrorType.TOP_FUNCTION,
            severity="warning",
        )
        assert CompileReport(diagnostics=[warn]).ok
