"""Scheduler/latency-model tests: pragmas must pay off the way the real
toolchain's would, since the repair search steers by these numbers."""

import math

import pytest

from repro.cfront import parse
from repro.hls import SolutionConfig, estimate
from repro.hls.platform import OFFLOAD_OVERHEAD_NS


def cycles(source, top="kernel", **cfg):
    unit = parse(source, top_name=top)
    return estimate(unit, SolutionConfig(top_name=top, **cfg)).cycles


BASE_LOOP = """
void kernel(int a[64], int out[64]) {{
    for (int i = 0; i < 64; i++) {{
        {pragma}
        out[i] = a[i] * 3 + 1;
    }}
}}
"""


class TestPipeline:
    def test_pipeline_beats_sequential(self):
        plain = cycles(BASE_LOOP.format(pragma=""))
        piped = cycles(BASE_LOOP.format(pragma="#pragma HLS pipeline II=1"))
        assert piped < plain / 3

    def test_higher_ii_is_slower(self):
        ii1 = cycles(BASE_LOOP.format(pragma="#pragma HLS pipeline II=1"))
        ii2 = cycles(BASE_LOOP.format(pragma="#pragma HLS pipeline II=2"))
        assert ii1 < ii2

    def test_pipeline_ineffective_with_nested_loop(self):
        src = """
        void kernel(int a[8]) {
            for (int i = 0; i < 8; i++) {
                #pragma HLS pipeline II=1
                for (int j = 0; j < 8; j++) {
                    a[j] = a[j] + i;
                }
            }
        }
        """
        src_plain = src.replace("#pragma HLS pipeline II=1\n", "")
        assert cycles(src) == pytest.approx(cycles(src_plain))


class TestUnrollAndPartition:
    UNROLLED = """
    void kernel(int a[64], int out[64]) {{
        {partition}
        for (int i = 0; i < 64; i++) {{
            #pragma HLS unroll factor=8
            out[i] = a[i] * 3;
        }}
    }}
    """

    def test_unroll_limited_by_memory_ports(self):
        no_partition = cycles(self.UNROLLED.format(partition=""))
        partitioned = cycles(self.UNROLLED.format(
            partition="#pragma HLS array_partition variable=a factor=8\n"
            "        #pragma HLS array_partition variable=out factor=8"
        ))
        assert partitioned < no_partition

    def test_unroll_with_partition_beats_plain(self):
        plain = cycles(BASE_LOOP.format(pragma=""))
        fast = cycles(self.UNROLLED.format(
            partition="#pragma HLS array_partition variable=a factor=8\n"
            "        #pragma HLS array_partition variable=out factor=8"
        ))
        assert fast < plain

    def test_unroll_scales_resources(self):
        unit_plain = parse(BASE_LOOP.format(pragma=""), top_name="kernel")
        unit_unrolled = parse(
            BASE_LOOP.format(pragma="#pragma HLS unroll factor=8"),
            top_name="kernel",
        )
        cfg = SolutionConfig(top_name="kernel")
        plain = estimate(unit_plain, cfg).resources
        unrolled = estimate(unit_unrolled, cfg).resources
        assert unrolled.dsps > plain.dsps


class TestDataflow:
    TWO_STAGE = """
    void stage_a(int a[32], int b[32]) {{
        for (int i = 0; i < 32; i++) {{ b[i] = a[i] + 1; }}
    }}
    void stage_b(int b[32], int c[32]) {{
        for (int i = 0; i < 32; i++) {{ c[i] = b[i] * 2; }}
    }}
    void kernel(int a[32], int c[32]) {{
        {pragma}
        static int mid[32];
        stage_a(a, mid);
        stage_b(mid, c);
    }}
    """

    def test_dataflow_overlaps_stages(self):
        serial = cycles(self.TWO_STAGE.format(pragma=""))
        overlapped = cycles(self.TWO_STAGE.format(pragma="#pragma HLS dataflow"))
        assert overlapped < serial


class TestStructure:
    def test_if_costs_worst_branch(self):
        balanced = """
        void kernel(int a[4], int x) {
            if (x) { a[0] = x * x * x; } else { a[0] = 1; }
        }
        """
        unit = parse(balanced, top_name="kernel")
        report = estimate(unit, SolutionConfig(top_name="kernel"))
        assert math.isfinite(report.cycles)

    def test_missing_top_gives_infinite_latency(self):
        unit = parse("int other() { return 1; }", top_name="kernel")
        report = estimate(unit, SolutionConfig(top_name="kernel"))
        assert math.isinf(report.cycles)

    def test_io_cycles_charged_for_interface_arrays(self):
        small = cycles("void kernel(int a[8]) { a[0] = 1; }")
        large = cycles("void kernel(int a[512]) { a[0] = 1; }")
        assert large > small

    def test_narrower_clock_means_lower_latency_ns(self):
        src = BASE_LOOP.format(pragma="")
        unit = parse(src, top_name="kernel")
        fast = estimate(unit, SolutionConfig(top_name="kernel", clock_period_ns=3.33))
        slow = estimate(unit, SolutionConfig(top_name="kernel", clock_period_ns=10.0))
        assert fast.kernel_latency_ns < slow.kernel_latency_ns
        assert fast.total_latency_ns == fast.kernel_latency_ns + OFFLOAD_OVERHEAD_NS

    def test_static_tripcount_recovery(self):
        from repro.hls.schedule import Scheduler
        from repro.cfront import nodes as N
        from repro.cfront.visitor import find_all

        unit = parse(
            "void kernel() { for (int i = 2; i <= 10; i += 2) { int x = i; } }",
            top_name="kernel",
        )
        loop = find_all(unit, N.For)[0]
        sched = Scheduler(unit, SolutionConfig(top_name="kernel"))
        assert sched._static_tripcount(loop) == 5

    def test_variable_bound_uses_default_tripcount(self):
        from repro.hls.schedule import DEFAULT_TRIPCOUNT, Scheduler
        from repro.cfront import nodes as N
        from repro.cfront.visitor import find_all

        unit = parse(
            "void kernel(int n) { for (int i = 0; i < n; i++) { int x = i; } }",
            top_name="kernel",
        )
        loop = find_all(unit, N.For)[0]
        sched = Scheduler(unit, SolutionConfig(top_name="kernel"))
        assert sched._static_tripcount(loop) is None

    def test_bram_scales_with_array_bits(self):
        narrow = parse("static fpga_uint<4> buf[4096];\nvoid kernel() {}", top_name="kernel")
        wide = parse("static long buf[4096];\nvoid kernel() {}", top_name="kernel")
        cfg = SolutionConfig(top_name="kernel")
        assert (
            estimate(narrow, cfg).resources.bram_36k
            < estimate(wide, cfg).resources.bram_36k
        )
