"""Synthesizability checker tests: each of the six error families fires
on the constructs Table 1 describes and stays quiet on clean designs."""

import pytest

from repro.cfront import parse
from repro.hls import SolutionConfig, compile_unit
from repro.hls.diagnostics import ErrorType


def errors_of(source, top="kernel", config=None):
    unit = parse(source, top_name=top)
    report = compile_unit(unit, config or SolutionConfig(top_name=top))
    return report.errors


def families(source, top="kernel", config=None):
    return {d.error_type for d in errors_of(source, top, config)}


class TestCleanDesigns:
    def test_minimal_kernel_compiles(self):
        assert errors_of("int kernel(int a[4]) { return a[0]; }") == []

    def test_pragmas_on_clean_design(self):
        src = """
        void kernel(int a[8], int out[8]) {
            #pragma HLS array_partition variable=a factor=4
            for (int i = 0; i < 8; i++) {
                #pragma HLS pipeline II=1
                out[i] = a[i] * 2;
            }
        }
        """
        assert errors_of(src) == []

    def test_top_pointer_params_are_interfaces(self):
        src = "int kernel(int *data) { return data[0]; }"
        assert errors_of(src) == []

    def test_compile_charges_minutes(self):
        from repro.hls import SimulatedClock
        from repro.hls.clock import ACT_HLS_COMPILE

        clock = SimulatedClock()
        unit = parse("int kernel() { return 0; }", top_name="kernel")
        compile_unit(unit, SolutionConfig(top_name="kernel"), clock=clock)
        assert clock.seconds > 60
        assert clock.count(ACT_HLS_COMPILE) == 1


class TestDynamicDataStructures:
    def test_recursion_flagged(self):
        src = """
        void walk(int n) { if (n > 0) { walk(n - 1); } }
        int kernel(int n) { walk(n); return 0; }
        """
        diags = errors_of(src)
        assert any("recursive" in d.message for d in diags)
        assert ErrorType.DYNAMIC_DATA_STRUCTURES in {d.error_type for d in diags}

    def test_mutual_recursion_flagged(self):
        src = """
        void a(int n);
        void b(int n) { a(n - 1); }
        void a(int n) { if (n > 0) { b(n); } }
        int kernel(int n) { a(n); return 0; }
        """
        assert any("recursive" in d.message for d in errors_of(src))

    def test_malloc_flagged(self):
        src = """
        struct P { int x; };
        int kernel() {
            struct P *p = (struct P *)malloc(sizeof(struct P));
            return 0;
        }
        """
        assert any("dynamic memory" in d.message for d in errors_of(src))

    def test_vla_flagged(self):
        src = "int kernel(int n) { float buf[n]; return 0; }"
        assert any("unknown size" in d.message for d in errors_of(src))

    def test_unreachable_code_not_checked(self):
        src = """
        void dead() { dead(); }
        int kernel(int n) { return n; }
        """
        assert errors_of(src) == []


class TestUnsupportedDataTypes:
    def test_long_double_flagged(self):
        src = "int kernel() { long double x = 1.0; return 0; }"
        diags = errors_of(src)
        assert any("long double" in d.message for d in diags)

    def test_pointer_local_flagged(self):
        src = "int kernel(int a[4]) { int *p = a; return *p; }"
        assert any("pointer" in d.message for d in errors_of(src))

    def test_pointer_param_in_helper_flagged(self):
        src = """
        int helper(int *p) { return *p; }
        int kernel(int a[4]) { return helper(a); }
        """
        assert any("pointer" in d.message for d in errors_of(src))

    def test_pointer_struct_field_flagged(self):
        src = """
        struct L { int v; struct L *next; };
        int kernel() { struct L cell; return cell.v; }
        """
        assert any("L.next" in d.symbol for d in errors_of(src))

    def test_bare_literal_with_custom_float_needs_cast(self):
        src = """
        int kernel(int x) {
            fpga_float<8,71> v = x;
            v = v + 1;
            return (int)v;
        }
        """
        assert any("explicit cast" in d.message for d in errors_of(src))

    def test_custom_float_arithmetic_needs_overload(self):
        src = """
        float kernel(float a) {
            fpga_float<8,71> x = a;
            fpga_float<8,71> y = a;
            fpga_float<8,71> z = x;
            z = x * y;
            return (float)z;
        }
        """
        assert any("overloaded" in d.message for d in errors_of(src))

    def test_thls_helpers_exempt(self):
        src = """
        fpga_float<8,71> thls_sum_80(fpga_float<8,71> a, fpga_float<8,71> b) {
            return a + b;
        }
        float kernel(float a) {
            fpga_float<8,71> x = a;
            fpga_float<8,71> y = thls_sum_80(x, x);
            return (float)y;
        }
        """
        assert errors_of(src) == []


class TestDataflowOptimization:
    def test_shared_array_across_stages_flagged(self):
        src = """
        void stage(int a[8], int out[8]) {
            for (int i = 0; i < 8; i++) { out[i] = a[i]; }
        }
        void kernel(int data[8], int x[8], int y[8]) {
            #pragma HLS dataflow
            stage(data, x);
            stage(data, y);
        }
        """
        diags = errors_of(src)
        assert any("failed dataflow checking" in d.message for d in diags)
        assert any(d.symbol == "data" for d in diags)

    def test_single_use_is_fine(self):
        src = """
        void stage(int a[8], int out[8]) {
            for (int i = 0; i < 8; i++) { out[i] = a[i]; }
        }
        void kernel(int data[8], int x[8]) {
            #pragma HLS dataflow
            stage(data, x);
        }
        """
        assert errors_of(src) == []

    def test_partition_factor_mismatch(self):
        src = """
        void kernel(int n) {
            int buf[13];
            #pragma HLS array_partition variable=buf factor=4
            for (int i = 0; i < 13; i++) { buf[i] = i; }
        }
        """
        diags = errors_of(src)
        assert any("not a multiple of partition factor" in d.message for d in diags)

    def test_matching_partition_factor_ok(self):
        src = """
        void kernel(int n) {
            int buf[16];
            #pragma HLS array_partition variable=buf factor=4
            for (int i = 0; i < 16; i++) { buf[i] = i; }
        }
        """
        assert errors_of(src) == []


class TestLoopParallelization:
    def test_big_unroll_under_dataflow(self):
        src = """
        void kernel(int a[8]) {
            #pragma HLS dataflow
            for (int i = 0; i < 8; i++) {
                #pragma HLS unroll factor=64
                a[i] = i;
            }
        }
        """
        diags = errors_of(src)
        assert any("Pre-synthesis failed" in d.message for d in diags)

    def test_small_unroll_under_dataflow_ok(self):
        src = """
        void kernel(int a[8]) {
            #pragma HLS dataflow
            for (int i = 0; i < 8; i++) {
                #pragma HLS unroll factor=4
                a[i] = i;
            }
        }
        """
        assert errors_of(src) == []

    def test_unroll_on_variable_bound_needs_tripcount(self):
        src = """
        void kernel(int a[32], int n) {
            for (int i = 0; i < n; i++) {
                #pragma HLS unroll factor=4
                a[i] = i;
            }
        }
        """
        assert any("tripcount" in d.message for d in errors_of(src))

    def test_tripcount_pragma_satisfies(self):
        src = """
        void kernel(int a[32], int n) {
            for (int i = 0; i < n; i++) {
                #pragma HLS loop_tripcount min=1 max=32
                #pragma HLS unroll factor=4
                a[i] = i;
            }
        }
        """
        assert errors_of(src) == []


class TestStructAndUnion:
    def test_struct_without_constructor_flagged(self):
        src = """
        struct S {
            int x;
            int get() { return this->x; }
        };
        int kernel() {
            struct S s;
            s.x = 1;
            return s.get();
        }
        """
        diags = errors_of(src)
        assert any("unsynthesizable struct" in d.message for d in diags)

    def test_struct_with_constructor_ok(self):
        src = """
        struct S {
            int x;
            S(int v) : x(v) {}
            int get() { return this->x; }
        };
        int kernel() {
            struct S s;
            s.x = 1;
            return s.get();
        }
        """
        assert errors_of(src) == []

    def test_plain_data_struct_ok(self):
        src = """
        struct P { int x; int y; };
        int kernel() {
            struct P p;
            p.x = 1;
            return p.x;
        }
        """
        assert errors_of(src) == []

    def test_nonstatic_stream_in_dataflow_flagged(self):
        src = """
        void kernel(int a[4]) {
            #pragma HLS dataflow
            hls::stream<unsigned> tmp;
            for (int i = 0; i < 4; i++) { tmp.write(a[i]); }
            for (int i = 0; i < 4; i++) { a[i] = tmp.read(); }
        }
        """
        diags = errors_of(src)
        assert any("static storage" in d.message for d in diags)

    def test_static_stream_in_dataflow_ok(self):
        src = """
        void kernel(int a[4]) {
            #pragma HLS dataflow
            static hls::stream<unsigned> tmp;
            for (int i = 0; i < 4; i++) { tmp.write(a[i]); }
            for (int i = 0; i < 4; i++) { a[i] = tmp.read(); }
        }
        """
        assert errors_of(src) == []


class TestTopFunction:
    def test_missing_top_function(self):
        src = "int kernel() { return 0; }"
        diags = errors_of(src, config=SolutionConfig(top_name="kernal"))
        assert any("Cannot find the top function" in d.message for d in diags)

    def test_unknown_device(self):
        diags = errors_of(
            "int kernel() { return 0; }",
            config=SolutionConfig(top_name="kernel", device="xcmystery"),
        )
        assert any("unknown device" in d.message for d in diags)

    def test_clock_beyond_device(self):
        diags = errors_of(
            "int kernel() { return 0; }",
            config=SolutionConfig(top_name="kernel", clock_period_ns=0.5),
        )
        assert any("clock period" in d.message for d in diags)

    def test_valid_config_quiet(self):
        assert errors_of("int kernel() { return 0; }") == []


class TestResourceLimits:
    def test_huge_unrolled_design_exceeds_small_device(self):
        src = """
        void kernel(int a[1024], int b[1024]) {
            for (int i = 0; i < 1024; i++) {
                #pragma HLS unroll factor=1024
                b[i] = a[i] * a[i] * a[i] * a[i] * a[i] * a[i] * a[i];
            }
        }
        """
        config = SolutionConfig(top_name="kernel", device="xc7z020")
        diags = errors_of(src, config=config)
        assert any("reduce parallelisation" in d.message for d in diags)
