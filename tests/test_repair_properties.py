"""Property suite for the repair engine: generated broken kernels.

A small program composer builds kernels from a pool of loop/arithmetic
building blocks, then injects combinations of the six seeded
incompatibility kinds.  For every composition the properties assert the
invariants the whole system rests on:

* the synthesizability checker flags each injected incompatibility;
* the repair search fixes the program (compatibility + behaviour) within
  budget;
* the repaired program still compiles when re-parsed from its rendered
  source (the output is real code, not an internal artifact).

This is an end-to-end "fuzzer for the repair engine", beyond anything a
single-subject test pins down.
"""

import itertools

import pytest

from repro import FuzzConfig, HeteroGen, HeteroGenConfig, SearchConfig
from repro.cfront import parse
from repro.hls import SolutionConfig, compile_unit
from repro.hls.diagnostics import ErrorType

# -- kernel composer -----------------------------------------------------------

BODY_BLOCKS = {
    "scale": "for (int i = 0; i < 16; i++) { out[i] = data[i] * 3 + 1; }",
    "prefix": (
        "int run = 0;\n"
        "for (int i = 0; i < 16; i++) { run += data[i]; out[i] = run; }"
    ),
    "clip": (
        "for (int i = 0; i < 16; i++) {\n"
        "    if (data[i] > 50) { out[i] = 50; }\n"
        "    else { out[i] = data[i]; }\n"
        "}"
    ),
}

INJECTIONS = {
    ErrorType.UNSUPPORTED_DATA_TYPES: {
        "decl": "long double scratch = 0.0;",
        "stmt": "scratch = scratch + out[0];",
    },
    ErrorType.DYNAMIC_DATA_STRUCTURES: {
        "decl": "float vbuf[n];",
        "stmt": "vbuf[0] = out[0]; out[0] = out[0] + (int)vbuf[0] * 0;",
    },
    ErrorType.LOOP_PARALLELIZATION: {
        "decl": "",
        "stmt": (
            "for (int u = 0; u < n; u++) {\n"
            "    #pragma HLS unroll factor=4\n"
            "    out[u % 16] = out[u % 16] + 0;\n"
            "}"
        ),
    },
}


def compose(block_names, injected):
    decls = ["if (n < 1) { n = 1; }", "if (n > 16) { n = 16; }"]
    for error_type in injected:
        if INJECTIONS[error_type]["decl"]:
            decls.append(INJECTIONS[error_type]["decl"])
    body = [BODY_BLOCKS[name] for name in block_names]
    body += [INJECTIONS[t]["stmt"] for t in injected]
    inner = "\n".join(decls + body)
    return (
        "int kernel(int data[16], int out[16], int n) {\n"
        f"{inner}\n"
        "    int total = 0;\n"
        "    for (int i = 0; i < 16; i++) { total += out[i]; }\n"
        "    return total;\n"
        "}\n"
    )


def injection_combinations():
    kinds = list(INJECTIONS)
    combos = []
    for r in (1, 2, 3):
        combos.extend(itertools.combinations(kinds, r))
    return combos


CASES = [
    (blocks, injected)
    for blocks in (("scale",), ("prefix", "clip"))
    for injected in injection_combinations()
]


def case_id(case):
    blocks, injected = case
    return "+".join(blocks) + "/" + "+".join(t.name[:7] for t in injected)


@pytest.mark.parametrize("case", CASES, ids=case_id)
def test_composed_kernel_is_flagged_then_repaired(case):
    blocks, injected = case
    source = compose(blocks, injected)
    unit = parse(source, top_name="kernel")
    report = compile_unit(unit, SolutionConfig(top_name="kernel"))

    # 1. Every injected incompatibility is diagnosed.
    families = {d.error_type for d in report.errors}
    for error_type in injected:
        assert error_type in families, (error_type, [str(d) for d in report.errors])

    # 2. The repair loop fixes it within budget.
    tool = HeteroGen(
        HeteroGenConfig(
            fuzz=FuzzConfig(max_execs=250, plateau_execs=120),
            search=SearchConfig(max_iterations=80, perf_exploration=False),
        )
    )
    result = tool.transpile(source, kernel_name="kernel")
    assert result.hls_compatible, result.search_result.history[-3:]
    assert result.behavior_preserved

    # 3. The output is real, self-contained source.
    reparsed = parse(result.final_source(), top_name="kernel")
    assert compile_unit(reparsed, result.final_config).ok
