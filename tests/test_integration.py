"""Cross-module integration tests (kept light; the benchmarks exercise
the full Table 3 sweep)."""

import pytest

from repro.baselines import default_config, run_variant
from repro.cfront import parse
from repro.hls import compile_unit
from repro.subjects import get_subject


def quick_config():
    return default_config(fuzz_execs=400, max_iterations=140)


@pytest.mark.parametrize("subject_id", ["P1", "P3", "P10"])
def test_representative_subjects_transpile(subject_id):
    """One subject per difficulty band: trivial arithmetic (P1),
    recursion with the resize story (P3), configuration repair (P10)."""
    subject = get_subject(subject_id)
    result = run_variant(subject, "HeteroGen", quick_config())
    assert result.hls_compatible, subject_id
    assert result.behavior_preserved, subject_id
    # The final program must be self-contained: reparse + recompile.
    reparsed = parse(result.final_source(), top_name=result.final_config.top_name)
    report = compile_unit(reparsed, result.final_config)
    assert report.ok, [str(d) for d in report.errors]


def test_p1_does_not_improve_performance():
    """Table 3's only ✗: no loops, no parallelising edit, FPGA loses."""
    result = run_variant(get_subject("P1"), "HeteroGen", quick_config())
    assert result.success
    assert not result.improved_performance


def test_p3_resize_story():
    """§6.2: the generated tests force a stack resize the pre-existing
    suite never would."""
    result = run_variant(get_subject("P3"), "HeteroGen", quick_config())
    assert result.success
    assert any(e.startswith("stack_trans") for e in result.applied_edits)
    assert any(e.startswith("resize") for e in result.applied_edits)
