"""Subject-suite tests, parametrized over all ten programs of Table 3."""

import pytest

from repro.cfront import count_loc
from repro.difftest import outputs_equal, run_cpu_reference
from repro.errors import SubjectError
from repro.fuzz import random_seed_args
from repro.hls import compile_unit
from repro.interp import ExecLimits, run_program
from repro.subjects import all_subjects, get_subject

import random

SUBJECTS = all_subjects()
LIMITS = ExecLimits(max_steps=400_000)


def subject_tests(subject, count=4, seed=0):
    """A few deterministic random tests plus the shipped ones."""
    unit = subject.parse()
    kernel = unit.function(subject.kernel)
    rng = random.Random(seed)
    tests = [
        random_seed_args([p.type for p in kernel.params], rng)
        for _ in range(count)
    ]
    return tests + subject.existing_test_list()


class TestRegistry:
    def test_ten_subjects_in_order(self):
        assert [s.id for s in SUBJECTS] == [f"P{i}" for i in range(1, 11)]

    def test_lookup_case_insensitive(self):
        assert get_subject("p3").id == "P3"

    def test_unknown_subject_raises(self):
        with pytest.raises(SubjectError):
            get_subject("P99")

    def test_table3_perf_expectations(self):
        # Table 3: all but P1 improve performance.
        assert not get_subject("P1").expect_perf_improvement
        for i in range(2, 11):
            assert get_subject(f"P{i}").expect_perf_improvement


@pytest.mark.parametrize("subject", SUBJECTS, ids=[s.id for s in SUBJECTS])
class TestEverySubject:
    def test_parses(self, subject):
        unit = subject.parse()
        assert unit.function(subject.kernel) is not None
        assert count_loc(unit) > 5

    def test_host_program_runs(self, subject):
        unit = subject.parse()
        run_program(unit, subject.host, list(subject.host_args), limits=LIMITS)

    def test_seeded_errors_fire(self, subject):
        unit = subject.parse()
        report = compile_unit(unit, subject.solution)
        assert report.errors, f"{subject.id} should be HLS-incompatible"
        families = {d.error_type for d in report.errors}
        for expected in subject.expected_error_types:
            assert expected in families, (subject.id, expected)

    def test_manual_version_compiles_clean(self, subject):
        manual = subject.parse_manual()
        assert manual is not None, f"{subject.id} is missing its manual port"
        solution = subject.manual_solution or subject.solution
        report = compile_unit(manual, solution)
        assert report.ok, [str(d) for d in report.errors]

    def test_manual_version_behaves_identically(self, subject):
        unit = subject.parse()
        manual = subject.parse_manual()
        solution = subject.manual_solution or subject.solution
        tests = subject_tests(subject)
        ref, _ = run_cpu_reference(unit, subject.kernel, tests, limits=LIMITS)
        new, _ = run_cpu_reference(
            manual, solution.top_name, tests, limits=LIMITS
        )
        for i, (a, b) in enumerate(zip(ref, new)):
            if a is None:
                continue  # hostile input faulted the reference
            assert b is not None, f"{subject.id} manual faulted on test {i}"
            assert outputs_equal(list(a), list(b)), f"{subject.id} test {i}"

    def test_existing_tests_run_on_original(self, subject):
        unit = subject.parse()
        for test in subject.existing_test_list():
            run_program(unit, subject.kernel, test, limits=LIMITS)


class TestExistingSuites:
    def test_paper_table4_subjects_with_existing_tests(self):
        # Table 4 lists pre-existing tests for P3, P5, P6, P9, P10.
        with_tests = {s.id for s in SUBJECTS if s.existing_tests}
        assert with_tests == {"P3", "P5", "P6", "P9", "P10"}

    def test_existing_suites_have_partial_coverage(self):
        from repro.fuzz import coverage_of_suite

        for sid in ("P3", "P5"):
            subject = get_subject(sid)
            cov = coverage_of_suite(
                subject.parse(), subject.kernel, subject.existing_test_list()
            )
            assert 0 < cov < 1.0, sid
