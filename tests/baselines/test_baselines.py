"""Baseline tests: HeteroRefactor scope and the Figure 9 ablation knobs."""

import pytest

from repro.baselines import (
    default_config,
    heterorefactor_registry,
    make_heterogen,
    make_heterorefactor,
    make_without_checker,
    make_without_dependence,
    run_variant,
)
from repro.hls.diagnostics import ErrorType
from repro.subjects import get_subject


def quick_config(**kwargs):
    kwargs.setdefault("fuzz_execs", 300)
    kwargs.setdefault("max_iterations", 100)
    return default_config(**kwargs)


class TestHeteroRefactorScope:
    def test_registry_limited_to_dynamic_structures(self):
        registry = heterorefactor_registry()
        names = {e.name for e in registry.all_edits()}
        assert names == {
            "array_static", "insert", "resize", "stack_trans", "pointer"
        }
        assert registry.perf_edits == []

    def test_no_edits_for_other_families(self):
        registry = heterorefactor_registry()
        assert registry.edits_for(ErrorType.STRUCT_AND_UNION) == []
        assert registry.edits_for(ErrorType.TOP_FUNCTION) == []
        assert registry.edits_for(ErrorType.LOOP_PARALLELIZATION) == []

    def test_succeeds_on_p3(self):
        result = run_variant(get_subject("P3"), "HeteroRefactor", quick_config())
        assert result.success

    def test_fails_on_type_errors_p2(self):
        result = run_variant(get_subject("P2"), "HeteroRefactor", quick_config())
        assert not result.success

    def test_fails_on_struct_errors_p9(self):
        result = run_variant(get_subject("P9"), "HeteroRefactor", quick_config())
        assert not result.success


class TestVariantFactories:
    def test_heterogen_defaults(self):
        tool = make_heterogen(quick_config())
        assert tool.config.search.use_style_checker
        assert tool.config.search.use_dependence

    def test_without_checker_flag(self):
        tool = make_without_checker(quick_config())
        assert not tool.config.search.use_style_checker
        assert tool.config.search.use_dependence

    def test_without_dependence_flag_and_budget(self):
        tool = make_without_dependence()
        assert not tool.config.search.use_dependence
        assert tool.config.search.budget_seconds == 12 * 3600.0

    def test_heterorefactor_no_perf_exploration(self):
        tool = make_heterorefactor(quick_config())
        assert not tool.config.search.perf_exploration


class TestAblationShape:
    """Figure 9's qualitative claims, on one small subject."""

    def test_checker_reduces_hls_invocations(self):
        subject = get_subject("P2")
        with_checker = run_variant(subject, "HeteroGen", quick_config(seed=3))
        without = run_variant(subject, "WithoutChecker", quick_config(seed=3))
        assert with_checker.success and without.success
        # Without the style gate every non-memoized candidate pays a
        # full compile; only eval-cache hits are spared.
        without_stats = without.search_result.stats
        assert without_stats.hls_invocations == without_stats.cache_misses
        assert (
            with_checker.search_result.stats.hls_invocation_ratio
            <= without.search_result.stats.hls_invocation_ratio
        )

    def test_dependence_reduces_repair_time(self):
        subject = get_subject("P2")
        guided = run_variant(subject, "HeteroGen", quick_config(seed=3))
        blind = run_variant(
            subject, "WithoutDependence",
            quick_config(seed=3, max_iterations=400,
                         budget_seconds=12 * 3600.0),
        )
        assert guided.success
        assert (
            blind.search_result.repair_seconds
            >= guided.search_result.repair_seconds
        )
