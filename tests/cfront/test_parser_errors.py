"""Parser error-path tests: malformed programs must fail with located
ParseErrors, never crash or hang."""

import pytest

from repro.cfront.parser import parse
from repro.errors import ParseError

MALFORMED = [
    "int f( { }",
    "int f() { return ; ",
    "struct { int x; };",          # anonymous structs unsupported
    "int a[;",
    "void f() { if (x } }",
    "void f() { for int i; }",
    "int 9illegal;",
    "void f() { x ->; }",
    "typedef int;",
    "fpga_uint<> x;",
    "fpga_float<8> x;",            # needs two parameters
    "hls::vector<int> v;",         # only hls::stream exists
    "void f() { do { } }",         # missing while
    "struct S { int x; } ;; extra",
    "int f(int a,) { return a; }",
    "void f() { int x = ; }",
    "union U { int i; float f; }", # missing semicolon
]


@pytest.mark.parametrize("source", MALFORMED)
def test_malformed_raises_parse_error(source):
    with pytest.raises(ParseError):
        parse(source)


def test_error_location_points_at_offender():
    try:
        parse("int x;\nint f( { }")
    except ParseError as exc:
        assert exc.line == 2
    else:  # pragma: no cover
        pytest.fail("expected ParseError")


def test_deep_nesting_parses():
    # Guard against accidental recursion pathologies in the descent.
    depth = 40
    source = (
        "int f(int x) { return " + "(" * depth + "x" + ")" * depth + "; }"
    )
    unit = parse(source)
    assert unit.function("f") is not None


def test_long_statement_sequence_parses():
    body = "\n".join(f"    int v{i} = {i};" for i in range(300))
    unit = parse("void f() {\n" + body + "\n}")
    assert len(unit.function("f").body.items) == 300


def test_keywords_cannot_be_identifiers():
    with pytest.raises(ParseError):
        parse("int return_;  int while;")
