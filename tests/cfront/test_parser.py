"""Parser tests: declarations, types, statements, expressions, fragments."""

import pytest

from repro.cfront import nodes as N
from repro.cfront import typesys as T
from repro.cfront.parser import (
    parse,
    parse_fragment_decls,
    parse_fragment_expr,
    parse_fragment_stmts,
)
from repro.cfront.visitor import find_all
from repro.errors import ParseError


class TestDeclarations:
    def test_global_variable(self):
        unit = parse("int counter = 3;")
        decl = unit.globals()[0]
        assert decl.name == "counter"
        assert decl.init.value == 3

    def test_static_const(self):
        unit = parse("static const int limit = 8;")
        decl = unit.globals()[0]
        assert decl.is_static and decl.is_const

    def test_global_array_with_initializer(self):
        unit = parse("int table[3] = {1, 2, 3};")
        decl = unit.globals()[0]
        assert isinstance(decl.type, T.ArrayType)
        assert decl.type.size == 3
        assert isinstance(decl.init, N.InitList)

    def test_function_definition(self):
        unit = parse("int add(int a, int b) { return a + b; }")
        func = unit.function("add")
        assert [p.name for p in func.params] == ["a", "b"]
        assert func.return_type == T.INT

    def test_function_prototype(self):
        unit = parse("int add(int a, int b);")
        assert isinstance(unit.decls[0], N.FunctionDef)
        assert unit.decls[0].body is None

    def test_void_param_list(self):
        unit = parse("int f(void) { return 1; }")
        assert unit.decls[0].params == []

    def test_typedef(self):
        unit = parse("typedef int Node_ptr;\nNode_ptr p = 0;")
        decl = unit.globals()[0]
        assert isinstance(decl.type, T.NamedType)
        assert decl.type.name == "Node_ptr"

    def test_top_name_recorded(self):
        unit = parse("void k() {}", top_name="k")
        assert unit.top_name == "k"


class TestTypes:
    def test_builtin_type_table(self):
        unit = parse(
            "char a; unsigned char b; short c; int d; unsigned e; "
            "long f; float g; double h; long double i;"
        )
        types = [d.type for d in unit.globals()]
        assert types[0] == T.CHAR
        assert types[1] == T.UCHAR
        assert types[4] == T.UINT
        assert types[8] == T.LONG_DOUBLE

    def test_pointer_declarator(self):
        unit = parse("int *p;")
        assert isinstance(unit.globals()[0].type, T.PointerType)

    def test_double_pointer(self):
        unit = parse("int **pp;")
        inner = unit.globals()[0].type
        assert isinstance(inner, T.PointerType)
        assert isinstance(inner.pointee, T.PointerType)

    def test_multidim_array(self):
        unit = parse("int m[4][8];")
        outer = unit.globals()[0].type
        assert isinstance(outer, T.ArrayType) and outer.size == 4
        assert isinstance(outer.elem, T.ArrayType) and outer.elem.size == 8

    def test_array_size_constant_folding(self):
        unit = parse("int a[4 * 4 + 2];")
        assert unit.globals()[0].type.size == 18

    def test_fpga_int_types(self):
        unit = parse("fpga_uint<7> r; fpga_int<12> s;")
        first, second = (d.type for d in unit.globals())
        assert first == T.FpgaIntType(7, signed=False)
        assert second == T.FpgaIntType(12, signed=True)

    def test_fpga_float_type(self):
        unit = parse("fpga_float<8,71> x;")
        assert unit.globals()[0].type == T.FpgaFloatType(8, 71)

    def test_stream_type(self):
        unit = parse("void f(hls::stream<unsigned> &in) {}")
        ptype = unit.decls[0].params[0].type
        assert isinstance(ptype, T.ReferenceType)
        assert isinstance(ptype.target, T.StreamType)

    def test_vla_detected(self):
        unit = parse("void f(int n) { float buf[n]; }")
        decl = find_all(unit, N.VarDecl)[0]
        assert decl.vla_size is not None
        assert decl.type.size is None

    def test_forward_struct_reference(self):
        unit = parse("typedef struct Later Later_t;\nstruct Later { int x; };")
        struct = unit.struct("Later")
        assert struct is not None
        assert struct.type.has_field("x")


class TestStructs:
    SRC = """
    struct Pair {
        int a;
        int b;
        int total() { return this->a + this->b; }
    };
    """

    def test_fields_and_methods(self):
        unit = parse(self.SRC)
        struct = unit.struct("Pair")
        assert struct.type.has_field("a")
        assert struct.type.method_names == ("total",)
        assert not struct.type.has_constructor

    def test_constructor_detection(self):
        unit = parse(
            "struct P { int x; P(int v) : x(v) {} };"
        )
        assert unit.struct("P").type.has_constructor

    def test_union(self):
        unit = parse("union U { int i; float f; };")
        struct = unit.struct("U")
        assert struct.is_union
        assert struct.type.sizeof() == 4

    def test_multiple_fields_one_line(self):
        unit = parse("struct V { int x, y, z; };")
        assert len(unit.struct("V").type.fields) == 3

    def test_unknown_type_in_decl_raises(self):
        with pytest.raises(ParseError):
            parse("mystery x;")


class TestStatements:
    def wrap(self, body):
        return parse("void f(int n) {\n" + body + "\n}").function("f")

    def test_if_else(self):
        func = self.wrap("if (n > 0) { n = 1; } else { n = 2; }")
        stmt = func.body.items[0]
        assert isinstance(stmt, N.If)
        assert stmt.other is not None

    def test_dangling_else_binds_inner(self):
        func = self.wrap("if (n) if (n > 1) n = 2; else n = 3;")
        outer = func.body.items[0]
        assert outer.other is None
        assert outer.then.other is not None

    def test_while_do_for(self):
        func = self.wrap(
            "while (n) { n--; } do { n++; } while (n < 3); "
            "for (int i = 0; i < 3; i++) { n += i; }"
        )
        assert isinstance(func.body.items[0], N.While)
        assert isinstance(func.body.items[1], N.DoWhile)
        assert isinstance(func.body.items[2], N.For)

    def test_for_with_empty_slots(self):
        func = self.wrap("for (;;) { break; }")
        loop = func.body.items[0]
        assert loop.init is None and loop.cond is None and loop.step is None

    def test_break_continue_return(self):
        func = self.wrap("while (1) { if (n) break; continue; } return;")
        assert isinstance(func.body.items[-1], N.Return)

    def test_pragma_statement(self):
        func = self.wrap("#pragma HLS unroll factor=4\nn = 1;")
        assert isinstance(func.body.items[0], N.Pragma)
        assert func.body.items[0].text == "HLS unroll factor=4"

    def test_empty_statement(self):
        func = self.wrap(";")
        assert isinstance(func.body.items[0], N.Empty)


class TestExpressions:
    def expr(self, text):
        return parse_fragment_expr(text)

    def test_precedence_mul_over_add(self):
        e = self.expr("1 + 2 * 3")
        assert e.op == "+"
        assert e.right.op == "*"

    def test_precedence_relational_over_logical(self):
        e = self.expr("a < b && c > d")
        assert e.op == "&&"

    def test_ternary(self):
        e = self.expr("a ? b : c")
        assert isinstance(e, N.Cond)

    def test_assignment_right_associative(self):
        e = self.expr("a = b = 1")
        assert isinstance(e, N.Assign)
        assert isinstance(e.value, N.Assign)

    def test_compound_assignment(self):
        e = self.expr("a += 2")
        assert e.op == "+="

    def test_unary_chain(self):
        e = self.expr("-~x")
        assert e.op == "-" and e.operand.op == "~"

    def test_pre_and_post_incdec(self):
        pre = self.expr("++x")
        post = self.expr("x++")
        assert isinstance(pre, N.IncDec) and not pre.postfix
        assert isinstance(post, N.IncDec) and post.postfix

    def test_call_and_index_and_member(self):
        e = self.expr("f(a, b)[2].field")
        assert isinstance(e, N.Member)
        assert isinstance(e.obj, N.Index)
        assert isinstance(e.obj.base, N.Call)

    def test_arrow(self):
        e = self.expr("p->next")
        assert e.arrow

    def test_cast(self):
        unit = parse("void f() { float x = (float)3; }")
        decl = find_all(unit, N.VarDecl)[0]
        assert isinstance(decl.init, N.Cast)

    def test_sizeof_type_folds(self):
        unit = parse("int a[sizeof(int)];")
        assert unit.globals()[0].type.size == 4

    def test_sizeof_expr(self):
        e = self.expr("sizeof(x + 1)")
        assert isinstance(e, N.SizeofExpr)

    def test_comma_operator(self):
        e = self.expr("a = 1, b = 2")
        assert e.op == ","

    def test_address_of_and_deref(self):
        e = self.expr("*&x")
        assert e.op == "*" and e.operand.op == "&"

    def test_parse_error_has_location(self):
        with pytest.raises(ParseError):
            parse("int f( { }")


class TestFragments:
    def test_fragment_decls_use_unit_context(self):
        unit = parse("struct Node { int v; };")
        decls = parse_fragment_decls(
            "static struct Node pool[8];", unit
        )
        assert isinstance(decls[0].type, T.ArrayType)

    def test_fragment_stmts(self):
        stmts = parse_fragment_stmts("int x = 1; x = x + 1;")
        assert len(stmts) == 2

    def test_fragment_expr(self):
        e = parse_fragment_expr("a[i] + 1")
        assert isinstance(e, N.BinOp)

    def test_fragment_nodes_have_fresh_uids(self):
        unit = parse("int x;")
        decls = parse_fragment_decls("int y;", unit)
        unit_uids = {n.uid for n in unit.walk()}
        frag_uids = {n.uid for d in decls for n in d.walk()}
        assert not unit_uids & frag_uids


class TestUids:
    def test_all_uids_unique_within_unit(self):
        unit = parse("int f(int a) { return a + 1; }\nint g() { return f(2); }")
        uids = [n.uid for n in unit.walk()]
        assert len(uids) == len(set(uids))
