"""The AST-graft identity contract (:mod:`repro.cfront.graft`).

The graft path may only exist if it is invisible: a unit reconstructed
by cloning cached decl templates and renumbering them into place must
be **bit-identical** — every uid, every line/col, every fingerprint,
the render round-trip, even the final position of the uid counter — to
what a full ``parse(render_unit_from_blocks(blocks))`` would produce.
These tests state that property over the ten Table 3 subjects, the
generated interpreter corpus, and hypothesis-built units that stress
the addressing edge cases: typedef-environment sensitivity, same-digest
shadowing blocks, declaration reordering, and discarded-uid consumers
(const-folded array sizes).
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfront import graft
from repro.cfront import nodes as N
from repro.cfront.fingerprint import exact_fp, structural_fp, unit_fingerprint
from repro.cfront.parser import parse
from repro.cfront.printer import render, render_decl, render_unit_from_blocks
from repro.subjects import all_subjects, generated_subjects

SUBJECTS = all_subjects()
CORPUS = generated_subjects()


@pytest.fixture(autouse=True)
def clean_template_cache():
    """Every test starts from an empty decl-template cache so hit/miss
    counts are deterministic, and leaves none of its templates behind."""
    graft.clear_decl_templates()
    yield
    graft.clear_decl_templates()


def full_parse(blocks, top_name=""):
    """The reference reconstruction the graft must be identical to."""
    N._uid_counter = itertools.count(1)
    return parse(render_unit_from_blocks(blocks), top_name=top_name)


def assert_graft_identical(blocks, top_name=""):
    """Graft the blocks and check every observable against a full parse:
    node-exact equality, renders, unit/decl fingerprints, and the final
    uid-counter position (later allocations must not diverge either)."""
    grafted, stats = graft.graft_unit(blocks, top_name=top_name)
    grafted_next = next(N._uid_counter)
    full = full_parse(blocks, top_name=top_name)
    full_next = next(N._uid_counter)
    graft.assert_units_identical(grafted, full)
    assert grafted_next == full_next
    assert render(grafted) == render(full)
    assert unit_fingerprint(grafted) == unit_fingerprint(full)
    for g_decl, f_decl in zip(grafted.decls, full.decls):
        assert structural_fp(grafted, g_decl) == structural_fp(full, f_decl)
        assert exact_fp(grafted, g_decl) == exact_fp(full, f_decl)
    return grafted, stats


def subject_blocks(subject):
    unit = subject.parse()
    return [render_decl(decl) for decl in unit.decls]


class TestSubjectIdentity:
    """Bit-identity over every real program the repo evaluates."""

    @pytest.mark.parametrize(
        "subject", SUBJECTS, ids=[s.id for s in SUBJECTS]
    )
    def test_graft_matches_full_parse(self, subject):
        blocks = subject_blocks(subject)
        _unit, stats = assert_graft_identical(
            blocks, top_name=subject.solution.top_name
        )
        assert stats.misses == len(blocks) and stats.hits == 0

    @pytest.mark.parametrize(
        "subject", SUBJECTS, ids=[s.id for s in SUBJECTS]
    )
    def test_second_graft_is_all_hits(self, subject):
        blocks = subject_blocks(subject)
        assert_graft_identical(blocks, top_name=subject.solution.top_name)
        _unit, stats = assert_graft_identical(
            blocks, top_name=subject.solution.top_name
        )
        assert stats.hits == len(blocks) and stats.misses == 0
        assert stats.parse_seconds == 0.0

    @pytest.mark.parametrize("gs", CORPUS, ids=[g.name for g in CORPUS])
    def test_generated_corpus(self, gs):
        unit = gs.parse()
        blocks = [render_decl(decl) for decl in unit.decls]
        assert_graft_identical(blocks, top_name=gs.kernel)

    def test_cross_mode_passes_on_subjects(self):
        for subject in SUBJECTS:
            blocks = subject_blocks(subject)
            unit, _stats = graft.graft_unit_cross(
                blocks, top_name=subject.solution.top_name
            )
            assert render(unit) == render_unit_from_blocks(blocks)


TYPEDEF_SENSITIVE = """
qty_t scale(qty_t v) {
    qty_t out = v;
    return out;
}
""".strip()


class TestEnvironmentAddressing:
    """Templates are keyed by (block digest, environment digest)."""

    def test_same_block_different_typedef_env(self):
        # The identical block text parses to *different* declarations
        # under different typedef environments; a content-only cache key
        # would serve the first parse to the second unit.
        for underlying in ("int", "float"):
            blocks = [f"typedef {underlying} qty_t;", TYPEDEF_SENSITIVE]
            assert_graft_identical(blocks)
        # Stronger: graft A, then B, and diff the function decl types.
        graft.clear_decl_templates()
        a, _ = graft.graft_unit(["typedef int qty_t;", TYPEDEF_SENSITIVE])
        b, _ = graft.graft_unit(["typedef float qty_t;", TYPEDEF_SENSITIVE])
        assert repr(a.decls[1].return_type) != repr(b.decls[1].return_type)

    def test_env_neutral_decls_do_not_advance_the_key(self):
        # Inserting a plain function between typedef and consumer must
        # not re-key the consumer: its environment did not change.
        blocks = ["typedef int qty_t;", TYPEDEF_SENSITIVE]
        assert_graft_identical(blocks)
        padded = [
            "typedef int qty_t;",
            "int pad(int x) {\n    return x;\n}",
            TYPEDEF_SENSITIVE,
        ]
        _unit, stats = assert_graft_identical(padded)
        # typedef and consumer blocks hit; only the insertion parses.
        assert stats.hits == 2 and stats.misses == 1

    def test_struct_forward_reference(self):
        blocks = [
            "struct node {\n    int value;\n    struct node *next;\n};",
            "int head_value(struct node *n) {\n    return n->value;\n}",
        ]
        assert_graft_identical(blocks)


class TestReorderingAndShadowing:
    def test_reordered_decls_hit_and_match(self):
        blocks = [
            "int first(int x) {\n    return x + 1;\n}",
            "int second(int x) {\n    return x + 2;\n}",
            "int third(int x) {\n    return first(x) + second(x);\n}",
        ]
        assert_graft_identical(blocks)
        reordered = [blocks[1], blocks[0], blocks[2]]
        _unit, stats = assert_graft_identical(reordered)
        # Position-independent addressing: every reordered block hits.
        assert stats.hits == len(blocks) and stats.misses == 0

    def test_same_digest_shadowing_blocks(self):
        # Two byte-identical blocks in one unit share a template but
        # must land at distinct uid/line offsets.
        block = "int twice(int x) {\n    return x * 2;\n}"
        blocks = [block, "int other(int y) {\n    return y;\n}", block]
        grafted, stats = assert_graft_identical(blocks)
        assert stats.misses == 2 and stats.hits == 1
        first, last = grafted.decls[0], grafted.decls[2]
        assert first is not last
        first_uids = [node.uid for node in first.walk()]
        last_uids = [node.uid for node in last.walk()]
        assert set(first_uids).isdisjoint(last_uids)

    def test_discarded_uid_consumers(self):
        # A folded constant array size parses (consuming uids) and is
        # then dropped; a node-count-based remap would collide here.
        blocks = [
            "int with_vla(int n) {\n    int buf[3 + 4];\n    buf[0] = n;\n    return buf[0];\n}",
            "int after(int x) {\n    return x;\n}",
        ]
        assert_graft_identical(blocks)


# -- hypothesis-generated units -------------------------------------------

NAMES = ("alpha", "beta", "gamma", "delta", "omega")


def _function_block(name, use_typedef, body_kind):
    arg_type = "qty_t" if use_typedef else "int"
    bodies = {
        "loop": (
            "    int acc = 0;\n"
            "    for (int i = 0; i < 4; i++) {\n"
            "        acc = acc + x;\n"
            "    }\n"
            "    return acc;"
        ),
        "vla": (
            "    int buf[2 + 2];\n"
            "    buf[1] = x;\n"
            "    return buf[1];"
        ),
        "plain": "    return x + 1;",
    }
    return (
        f"{arg_type} {name}({arg_type} x) {{\n{bodies[body_kind]}\n}}"
    )


@st.composite
def decl_sequences(draw):
    """A parseable unit: optional typedef/struct prologue, then 1–5
    function blocks (duplicates allowed — same-digest shadowing)."""
    blocks = []
    has_typedef = draw(st.booleans())
    if has_typedef:
        underlying = draw(st.sampled_from(("int", "float", "char")))
        blocks.append(f"typedef {underlying} qty_t;")
    if draw(st.booleans()):
        blocks.append("struct pair {\n    int a;\n    int b;\n};")
    count = draw(st.integers(min_value=1, max_value=5))
    for index in range(count):
        name = draw(st.sampled_from(NAMES)) + str(index)
        use_typedef = has_typedef and draw(st.booleans())
        body = draw(st.sampled_from(("loop", "vla", "plain")))
        blocks.append(_function_block(name, use_typedef, body))
    if draw(st.booleans()) and len(blocks) > 1:
        blocks.append(blocks[-1])  # exact duplicate → shadowing
    return blocks


class TestGeneratedUnits:
    @settings(max_examples=60, deadline=None)
    @given(decl_sequences())
    def test_graft_identity(self, blocks):
        assert_graft_identical(blocks)

    @settings(max_examples=30, deadline=None)
    @given(decl_sequences(), st.randoms(use_true_random=False))
    def test_warm_cache_and_permutation(self, blocks, rng):
        assert_graft_identical(blocks)
        warm, stats = assert_graft_identical(blocks)
        assert stats.misses == 0 and stats.hits == len(blocks)
        # Permute only the function blocks: moving a typedef/struct
        # below a consumer would be invalid source for full parse and
        # graft alike.
        prologue = [
            b for b in blocks if b.startswith(("typedef", "struct"))
        ]
        tail = [b for b in blocks if not b.startswith(("typedef", "struct"))]
        rng.shuffle(tail)
        assert_graft_identical(prologue + tail)


class TestModeKnob:
    def test_mode_parsing(self, monkeypatch):
        for raw, expected in (
            ("", "on"), ("1", "on"), ("on", "on"), ("ON", "on"),
            ("0", "off"), ("off", "off"), ("false", "off"), ("no", "off"),
            ("cross", "cross"), ("CROSS", "cross"),
        ):
            if raw:
                monkeypatch.setenv(graft.GRAFT_ENV, raw)
            else:
                monkeypatch.delenv(graft.GRAFT_ENV, raising=False)
            assert graft.graft_mode() == expected

    def test_cross_mode_raises_on_divergence(self):
        blocks = ["int f(int x) {\n    return x;\n}"]
        grafted, _ = graft.graft_unit(blocks)
        full = full_parse(blocks)
        # Sabotage one uid: the checker must notice.
        grafted.decls[0].uid += 1000
        with pytest.raises(graft.GraftMismatch):
            graft.assert_units_identical(grafted, full)

    def test_empty_blocks_unsupported(self):
        with pytest.raises(graft.GraftUnsupported):
            graft.graft_unit([])


class TestCowClone:
    """The parent-side copy-on-write clone used by ``cloned_unit``."""

    SRC = (
        "int helper(int x) {\n    return x + 1;\n}\n\n"
        "int kernel(int a) {\n    return helper(a);\n}\n"
    )

    def test_shares_clean_and_copies_dirty(self):
        parent = parse(self.SRC, top_name="kernel")
        child = graft.cow_clone_unit(parent, {"kernel"})
        assert child.decls[0] is parent.decls[0]
        assert child.decls[1] is not parent.decls[1]
        assert child == parent  # value-identical before any rewrite
        assert child.decls is not parent.decls

    def test_drops_unit_bookkeeping(self):
        parent = parse(self.SRC, top_name="kernel")
        unit_fingerprint(parent)  # populates _fp_table/_unit_fp
        assert "_fp_table" in parent.__dict__
        child = graft.cow_clone_unit(parent, {"kernel"})
        for key in graft._CLONE_DROPPED:
            assert key not in child.__dict__
        assert child.top_name == "kernel"

    def test_render_and_fingerprints_match_deepcopy(self):
        parent = parse(self.SRC, top_name="kernel")
        cow = graft.cow_clone_unit(parent, {"kernel"})
        deep = N.clone(parent)
        assert render(cow) == render(deep)
        assert unit_fingerprint(cow) == unit_fingerprint(deep)


class TestHoleTemplates:
    """The second cache tier: literal-normalized decl shapes whose int
    and pragma holes are proven by comparison against a paid-for parse,
    then substituted without parsing.  Every hit must stay bit-identical
    to a full parse; anything unprovable must quietly fall back."""

    @staticmethod
    def _scale(n):
        return f"int scale(int x) {{\n    int f = {n};\n    return x * f;\n}}"

    TOP = "int top(int x) {\n    return scale(x) + 1;\n}"

    def test_int_ladder_proves_then_substitutes(self):
        # miss (base), miss (proof), hit, hit — identity at every rung.
        for i, n in enumerate((4, 8, 123456, 7)):
            assert_graft_identical([self._scale(n), self.TOP])
        stats = graft.decl_cache_stats()
        assert stats["hole_hits"] == 2
        # Once substituted, the exact tier owns the variant.
        assert_graft_identical([self._scale(7), self.TOP])
        assert graft.decl_cache_stats()["hole_hits"] == 2

    def test_width_change_shifts_columns(self):
        # Two literals on one line; widening the first must shift the
        # second literal's column (and every node right of it) so the
        # grafted locs match a full parse exactly.
        def block(a, b):
            return f"int pick(int x) {{\n    int v = {a} + x * {b};\n    return v;\n}}"

        # base, proof of a, hit (wide a), proof of b, hit (both change)
        for a, b in ((3, 9), (14, 9), (1234567, 9), (2, 88), (600, 5)):
            assert_graft_identical([block(a, b)])
        assert graft.decl_cache_stats()["hole_hits"] == 2

    def test_pragma_ladder(self):
        def block(n):
            return (
                "void fill(int *a) {\n"
                "#pragma HLS unroll factor=%d\n"
                "    for (int i = 0; i < 16; i = i + 1) {\n"
                "        a[i] = i;\n"
                "    }\n"
                "}" % n
            )

        for n in (2, 4, 8, 16):
            assert_graft_identical([block(n)])
        assert graft.decl_cache_stats()["hole_hits"] == 2

    def test_array_dimension_proves_as_dim_slot(self):
        # The literal is an array bound baked into the declarator's
        # frozen CType — no IntLit node exists — so substitution
        # rebuilds the ArrayType chain positionally, and the proof
        # gate checks the rebuilt type value-for-value.
        def block(n):
            return f"int sum(void) {{\n    int buf[{n}];\n    return buf[0];\n}}"

        for n in (4, 8, 16, 32):
            assert_graft_identical([block(n)])
        stats = graft.decl_cache_stats()
        assert stats["hole_hits"] == 2
        assert stats["misses"] == 2

    def test_nested_dims_and_param_dims(self):
        def block(n):
            return (
                f"int pick(int a[{n}]) {{\n"
                f"    int m[{n}][3];\n"
                "    return m[0][0] + a[0];\n"
                "}"
            )

        for n in (2, 40, 7):
            assert_graft_identical([block(n)])
        assert graft.decl_cache_stats()["hole_hits"] == 1

    def test_dim_feeding_loop_bound_stays_identical(self):
        # The bound appears both as a dim slot and as an IntLit in the
        # loop condition; both holes must substitute coherently.
        def block(n):
            return (
                f"int total(int *src) {{\n"
                f"    int acc[{n}];\n"
                f"    for (int i = 0; i < {n}; i = i + 1) {{\n"
                "        acc[i] = src[i];\n"
                "    }\n"
                "    return acc[0];\n"
                "}"
            )

        for n in (8, 16, 64):
            assert_graft_identical([block(n)])
        assert graft.decl_cache_stats()["hole_hits"] == 1

    def test_digits_inside_strings_never_prove(self):
        # The shape normalizer sees digits inside string literals, but
        # no IntLit node sits at that location, so the hole can never be
        # classified or proven — every variant parses, and stays right.
        def block(n):
            return (
                "int tag(void) {\n"
                '    char *s = "id %d";\n'
                "    return s[0];\n"
                "}" % n
            )

        for n in (7, 8, 9):
            assert_graft_identical([block(n)])
        stats = graft.decl_cache_stats()
        assert stats["hole_hits"] == 0
        assert stats["misses"] == 3

    def test_typedef_blocks_skip_the_hole_tier(self):
        # Environment-mutating members are never family material.
        def block(n):
            return f"typedef int fix{n};"

        for n in (1, 2, 3):
            assert_graft_identical([block(n), self.TOP.replace("scale(x) + 1", "x")])
        assert graft.decl_cache_stats()["hole_hits"] == 0

    def test_cross_mode_over_hole_hits(self, monkeypatch):
        monkeypatch.setenv(graft.GRAFT_ENV, "cross")
        for n in (4, 8, 15, 16):
            blocks = [self._scale(n), self.TOP]
            unit, _ = graft.graft_unit_cross(blocks)
            full = full_parse(blocks)
            graft.assert_units_identical(unit, full)
        assert graft.decl_cache_stats()["hole_hits"] == 2

    def test_warmed_blocks_seed_families(self):
        # warm_templates registers the baseline as family base; the
        # first edited variant then proves the hole, the second hits.
        graft.warm_templates([self._scale(4), self.TOP])
        assert graft.decl_cache_stats()["warmed"] == 2
        assert_graft_identical([self._scale(9), self.TOP])
        assert graft.decl_cache_stats()["hole_hits"] == 0  # proof rung
        assert_graft_identical([self._scale(23), self.TOP])
        assert graft.decl_cache_stats()["hole_hits"] == 1

    def test_family_lru_bound(self):
        bound = graft._MAX_FAMILIES
        try:
            graft._MAX_FAMILIES = 4
            for n in range(8):
                assert_graft_identical(
                    [f"int f{n}(int x) {{\n    return x + {n};\n}}"]
                )
            assert len(graft._HOLE_FAMILIES) <= 4
        finally:
            graft._MAX_FAMILIES = bound
