"""Visitor / AST-surgery helper tests."""

from repro.cfront import nodes as N
from repro.cfront.parser import parse, parse_fragment_stmts
from repro.cfront.visitor import (
    Visitor,
    calls_to,
    enclosing_function,
    find_all,
    find_by_uid,
    insert_after,
    insert_before,
    parent_map,
    replace_expr,
    replace_stmt_in,
    rewrite_exprs,
)

SRC = """
int helper(int x) { return x * 2; }
int main_fn(int a[4]) {
    int total = 0;
    for (int i = 0; i < 4; i++) {
        total += helper(a[i]);
    }
    return total;
}
"""


def test_find_all_with_predicate():
    unit = parse(SRC)
    loops = find_all(unit, N.For)
    assert len(loops) == 1
    big_ints = find_all(unit, N.IntLit, lambda n: n.value >= 2)
    assert {n.value for n in big_ints} == {2, 4}


def test_find_by_uid():
    unit = parse(SRC)
    loop = find_all(unit, N.For)[0]
    assert find_by_uid(unit, loop.uid) is loop
    assert find_by_uid(unit, 10**9) is None


def test_parent_map():
    unit = parse(SRC)
    parents = parent_map(unit)
    loop = find_all(unit, N.For)[0]
    parent = parents[loop.uid]
    assert isinstance(parent, N.Compound)


def test_calls_to():
    unit = parse(SRC)
    assert len(calls_to(unit, "helper")) == 1
    assert calls_to(unit, "nonexistent") == []


def test_enclosing_function():
    unit = parse(SRC)
    call = calls_to(unit, "helper")[0]
    func = enclosing_function(unit, call.uid)
    assert func.name == "main_fn"


def test_dispatching_visitor():
    unit = parse(SRC)

    class CallCounter(Visitor):
        def __init__(self):
            self.calls = 0

        def visit_Call(self, node):
            self.calls += 1
            self.generic_visit(node)

    counter = CallCounter()
    counter.visit(unit)
    assert counter.calls == 1


def test_replace_stmt_in():
    unit = parse("void f() { int a = 1; int b = 2; }")
    body = unit.function("f").body
    target = body.items[0]
    new_stmts = parse_fragment_stmts("int c = 3; int d = 4;")
    assert replace_stmt_in(body, target.uid, new_stmts)
    assert len(body.items) == 3
    assert body.items[0].decl.name == "c"


def test_replace_stmt_deletion():
    unit = parse("void f() { int a = 1; int b = 2; }")
    body = unit.function("f").body
    assert replace_stmt_in(body, body.items[0].uid, [])
    assert len(body.items) == 1


def test_insert_before_and_after():
    unit = parse("void f() { int a = 1; }")
    body = unit.function("f").body
    anchor = body.items[0]
    insert_before(body, anchor.uid, parse_fragment_stmts("int pre = 0;"))
    insert_after(body, anchor.uid, parse_fragment_stmts("int post = 2;"))
    names = [s.decl.name for s in body.items]
    assert names == ["pre", "a", "post"]


def test_replace_expr_in_field():
    unit = parse("int f() { return 1 + 2; }")
    ret = find_all(unit, N.Return)[0]
    assert replace_expr(unit, ret.value.uid, N.IntLit(value=42, text="42"))
    assert ret.value.value == 42


def test_replace_expr_in_list():
    unit = parse("void f() { g(1, 2); }")
    call = find_all(unit, N.Call)[0]
    old_arg = call.args[1]
    assert replace_expr(unit, old_arg.uid, N.IntLit(value=9, text="9"))
    assert call.args[1].value == 9


def test_rewrite_exprs_bottom_up():
    unit = parse("int f() { return 1 + 2 + 3; }")

    seen = []

    def record(expr):
        if isinstance(expr, N.IntLit):
            seen.append(expr.value)
        return None

    rewrite_exprs(unit, record)
    assert seen == [1, 2, 3]


def test_rewrite_exprs_substitutes():
    unit = parse("int f(int x) { return x + 1; }")

    def double_literals(expr):
        if isinstance(expr, N.IntLit):
            return N.IntLit(value=expr.value * 2, text=str(expr.value * 2))
        return None

    rewrite_exprs(unit, double_literals)
    lits = find_all(unit, N.IntLit)
    assert [l.value for l in lits] == [2]


def test_clone_preserves_uids_refresh_changes_them():
    unit = parse(SRC)
    cloned = N.clone(unit)
    assert [n.uid for n in unit.walk()] == [n.uid for n in cloned.walk()]
    N.refresh_uids(cloned)
    assert [n.uid for n in unit.walk()] != [n.uid for n in cloned.walk()]
