"""Printer tests: rendering, round-tripping, LOC accounting."""

import pytest

from repro.cfront import count_loc, added_loc, parse, render
from repro.cfront import nodes as N
from repro.difftest import outputs_equal, run_cpu_reference

ROUNDTRIP_SOURCES = [
    "int x = 5;",
    "static const float pi = 3.14;",
    "int a[4] = {1, 2, 3, 4};",
    "typedef int Node_ptr;\nNode_ptr p;",
    "fpga_uint<7> r;",
    "fpga_float<8,71> f;",
    "struct P { int x; int y; };\nstruct P g;",
    "union U { int i; float f; };",
    """
    int fib(int n) {
        if (n < 2) {
            return n;
        }
        int a = 0;
        int b = 1;
        for (int i = 2; i <= n; i++) {
            int t = a + b;
            a = b;
            b = t;
        }
        return b;
    }
    """,
    """
    void locked(int a[8]) {
        #pragma HLS array_partition variable=a factor=4
        for (int i = 0; i < 8; i++) {
            #pragma HLS pipeline II=1
            a[i] = a[i] * 2;
        }
    }
    """,
    """
    struct Pair {
        int a;
        int b;
        int total() { return this->a + this->b; }
    };
    """,
    "void f(hls::stream<unsigned> &in, hls::stream<unsigned> &out) { out.write(in.read()); }",
    # Figure 4 explicit-policy cast, the shape type_casting repair edits
    # emit; the process executor ships candidates as rendered source, so
    # this round trip must stay closed.
    """
    int f(int x) {
        return (int)thls::to<fpga_float<8,71>, thls::convert_policy(0xF)>(x);
    }
    """,
]


def test_policy_cast_parses_into_cast_node():
    unit = parse(
        "int f(int x) {"
        " return (int)thls::to<fpga_float<8,71>, thls::convert_policy(0xF)>(x);"
        " }"
    )
    cast = next(
        n for n in unit.walk() if isinstance(n, N.Cast) and n.explicit_policy
    )
    assert cast.explicit_policy == "thls::convert_policy(0xF)"
    assert cast.to_type.exp_bits == 8 and cast.to_type.mant_bits == 71


@pytest.mark.parametrize("source", ROUNDTRIP_SOURCES)
def test_render_reparses(source):
    """Rendered output must itself parse (syntactic round-trip)."""
    unit = parse(source)
    text = render(unit)
    reparsed = parse(text)
    assert render(reparsed) == text  # fixed point after one round


def test_semantic_round_trip():
    """Round-tripped programs behave identically."""
    source = """
    int collatz(int n) {
        int steps = 0;
        while (n > 1 && steps < 100) {
            if (n % 2 == 0) {
                n = n / 2;
            } else {
                n = 3 * n + 1;
            }
            steps++;
        }
        return steps;
    }
    """
    unit = parse(source)
    reparsed = parse(render(unit))
    tests = [[7], [27], [1], [100]]
    ref, _ = run_cpu_reference(unit, "collatz", tests)
    new, _ = run_cpu_reference(reparsed, "collatz", tests)
    assert all(outputs_equal(list(a), list(b)) for a, b in zip(ref, new))


class TestExpressions:
    def render_expr(self, source):
        unit = parse(f"int f() {{ return {source}; }}")
        return render(unit)

    def test_precedence_parens_preserved(self):
        text = self.render_expr("(1 + 2) * 3")
        assert "(1 + 2) * 3" in text

    def test_no_spurious_parens(self):
        text = self.render_expr("1 + 2 * 3")
        assert "1 + 2 * 3" in text

    def test_nested_ternary(self):
        text = self.render_expr("a ? b : c ? d : e")
        reparsed = parse("int f() { return " + text.split("return ")[1].rstrip("};\n ") + "; }")
        assert reparsed is not None

    def test_cast_policy_rendering(self):
        from repro.cfront import typesys as T

        cast = N.Cast(
            to_type=T.FpgaFloatType(8, 71),
            expr=N.IntLit(value=1, text="1"),
            explicit_policy="thls::convert_policy(0xF)",
        )
        from repro.cfront.printer import Printer

        text = Printer().expr(cast)
        assert text == "thls::to<fpga_float<8,71>, thls::convert_policy(0xF)>(1)"


class TestVlaRendering:
    def test_vla_prints_runtime_size(self):
        unit = parse("void f(int n) { float buf[n]; }")
        assert "float buf[n];" in render(unit)


class TestLoc:
    def test_count_loc_ignores_blanks(self):
        unit = parse("int x;\n\n\nint y;")
        assert count_loc(unit) == 2

    def test_added_loc_zero_for_identical(self):
        unit = parse("int x;\nint y;")
        assert added_loc(unit, unit) == 0

    def test_added_loc_counts_new_lines(self):
        before = parse("int x;")
        after = parse("int x;\nint y;\nint z;")
        assert added_loc(before, after) == 2

    def test_added_loc_handles_duplicates(self):
        before = parse("int f() { int a = 1; return a; }")
        after = parse("int f() { int a = 1; int b = 1; return a; }")
        # `int b = 1;` is new even though `int a = 1;` looks similar
        assert added_loc(before, after) == 1
