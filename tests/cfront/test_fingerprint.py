"""Fingerprint semantics (the contract every incremental cache rests on).

Structural digests must be blind to bookkeeping (uids, lines) and
sensitive to every semantic token; exact digests must additionally pin
the bookkeeping, so exact-equality means value-identity.
"""

import pytest

from repro.cfront import nodes as N
from repro.cfront import fingerprint as fp
from repro.cfront.nodes import clone
from repro.cfront.parser import parse
from repro.cfront.printer import render
from repro.core.edits.base import Candidate, cloned_unit, owning_decl_names
from repro.hls.platform import SolutionConfig

SOURCE = """
int scale = 3;

int helper(int x) {
    return x * scale;
}

int kernel(int data[8], int n) {
    int acc = 0;
    for (int i = 0; i < n; i += 1) {
#pragma HLS unroll factor=2
        acc += helper(data[i]);
    }
    return acc;
}
"""


def _func(unit, name):
    func = unit.function(name)
    assert func is not None
    return func


def test_reparse_hashes_structurally_equal():
    a = parse(SOURCE, top_name="kernel")
    b = parse(SOURCE, top_name="kernel")
    for name in ("helper", "kernel"):
        assert fp.structural_fp(a, _func(a, name)) == fp.structural_fp(
            b, _func(b, name)
        )
    assert fp.unit_fingerprint(a) == fp.unit_fingerprint(b)
    # The second parse drew fresh uids, so the *exact* digests differ:
    # they pin bookkeeping on purpose.
    assert fp.exact_fp(a, _func(a, "kernel")) != fp.exact_fp(
        b, _func(b, "kernel")
    )


@pytest.mark.parametrize(
    "before, after",
    [
        ("return x * scale;", "return x + scale;"),  # operator
        ("int acc = 0;", "int acc = 1;"),  # literal
        ("factor=2", "factor=4"),  # pragma argument
    ],
)
def test_single_token_edits_change_structural_digest(before, after):
    a = parse(SOURCE, top_name="kernel")
    b = parse(SOURCE.replace(before, after), top_name="kernel")
    changed = "helper" if "scale" in before else "kernel"
    assert fp.structural_fp(a, _func(a, changed)) != fp.structural_fp(
        b, _func(b, changed)
    )
    assert fp.unit_fingerprint(a) != fp.unit_fingerprint(b)


def test_declaration_order_changes_unit_digest():
    reordered = SOURCE.replace(
        "int scale = 3;\n", ""
    ).replace("int kernel", "int scale = 3;\n\nint kernel", 1)
    a = parse(SOURCE, top_name="kernel")
    b = parse(reordered, top_name="kernel")
    # Same declarations, different order: per-decl digests agree but the
    # combined unit digest must not.
    assert fp.structural_fp(a, _func(a, "helper")) == fp.structural_fp(
        b, _func(b, "helper")
    )
    assert fp.unit_fingerprint(a) != fp.unit_fingerprint(b)


def test_clone_roundtrip_preserves_both_digests():
    unit = parse(SOURCE, top_name="kernel")
    structural = fp.structural_fp(unit, _func(unit, "kernel"))
    exact = fp.exact_fp(unit, _func(unit, "kernel"))
    copied = clone(unit)
    # clone() preserves uids/lines, so even the exact digest survives —
    # and the clone starts with an empty table (recomputed, not inherited).
    assert fp.FP_TABLE_ATTR not in copied.__dict__
    assert fp.structural_fp(copied, _func(copied, "kernel")) == structural
    assert fp.exact_fp(copied, _func(copied, "kernel")) == exact


def test_print_reparse_roundtrip_preserves_structural_digest():
    unit = parse(SOURCE, top_name="kernel")
    reparsed = parse(render(unit), top_name="kernel")
    for name in ("helper", "kernel"):
        assert fp.structural_fp(unit, _func(unit, name)) == fp.structural_fp(
            reparsed, _func(reparsed, name)
        )
    assert fp.unit_fingerprint(unit) == fp.unit_fingerprint(reparsed)


def test_dirty_aware_clone_inherits_clean_entries_only():
    with fp.forced_mode("on"):
        unit = parse(SOURCE, top_name="kernel")
        helper_uid = _func(unit, "helper").uid
        kernel_uid = _func(unit, "kernel").uid
        # Populate the parent's table.
        fp.decl_digests(unit, _func(unit, "helper"))
        fp.decl_digests(unit, _func(unit, "kernel"))
        candidate = Candidate(
            unit=unit, config=SolutionConfig(top_name="kernel")
        )
        child = cloned_unit(candidate, dirty=["kernel"])
        table = child.__dict__.get(fp.FP_TABLE_ATTR, {})
        assert helper_uid in table  # clean decl: digest inherited
        assert kernel_uid not in table  # dirty decl: recomputed lazily
        # And the inherited entry matches a from-scratch recomputation.
        assert table[helper_uid] == fp.node_digests(_func(child, "helper"))


def test_dirty_none_inherits_nothing():
    unit = parse(SOURCE, top_name="kernel")
    fp.decl_digests(unit, _func(unit, "helper"))
    candidate = Candidate(unit=unit, config=SolutionConfig(top_name="kernel"))
    child = cloned_unit(candidate, dirty=None)
    assert not child.__dict__.get(fp.FP_TABLE_ATTR)


def test_owning_decl_names_locates_enclosing_function():
    unit = parse(SOURCE, top_name="kernel")
    kernel = _func(unit, "kernel")
    loop = next(n for n in kernel.walk() if isinstance(n, N.For))
    assert owning_decl_names(unit, loop.uid) == ["kernel"]
    assert owning_decl_names(unit, 10**9) is None


def test_mutation_after_dirty_clone_changes_only_dirty_digest():
    unit = parse(SOURCE, top_name="kernel")
    fp.decl_digests(unit, _func(unit, "helper"))
    fp.decl_digests(unit, _func(unit, "kernel"))
    candidate = Candidate(unit=unit, config=SolutionConfig(top_name="kernel"))
    child = cloned_unit(candidate, dirty=["kernel"])
    lit = next(
        n for n in _func(child, "kernel").walk() if isinstance(n, N.IntLit)
    )
    lit.value += 41
    assert fp.structural_fp(child, _func(child, "kernel")) != fp.structural_fp(
        unit, _func(unit, "kernel")
    )
    assert fp.structural_fp(child, _func(child, "helper")) == fp.structural_fp(
        unit, _func(unit, "helper")
    )
    assert fp.unit_fingerprint(child) != fp.unit_fingerprint(unit)
