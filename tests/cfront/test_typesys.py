"""Type system tests, including hypothesis properties on the HLS types."""

import pytest
from hypothesis import given, strategies as st

from repro.cfront import typesys as T


class TestSizeof:
    def test_native_sizes(self):
        assert T.CHAR.sizeof() == 1
        assert T.INT.sizeof() == 4
        assert T.LONG.sizeof() == 8
        assert T.FLOAT.sizeof() == 4
        assert T.DOUBLE.sizeof() == 8
        assert T.LONG_DOUBLE.sizeof() == 10

    def test_fpga_int_rounds_up_to_bytes(self):
        assert T.FpgaIntType(7).sizeof() == 1
        assert T.FpgaIntType(9).sizeof() == 2
        assert T.FpgaFloatType(8, 71).sizeof() == 10

    def test_array_sizeof(self):
        assert T.ArrayType(T.INT, 10).sizeof() == 40
        assert T.ArrayType(T.ArrayType(T.INT, 4), 4).sizeof() == 64

    def test_struct_vs_union_sizeof(self):
        fields = (T.StructField("a", T.INT), T.StructField("b", T.LONG))
        struct = T.StructType("S", fields)
        union = T.StructType("U", fields, is_union=True)
        assert struct.sizeof() == 12
        assert union.sizeof() == 8

    def test_pointer_sizeof(self):
        assert T.PointerType(T.CHAR).sizeof() == 8


class TestSynthesizability:
    def test_long_double_not_synthesizable(self):
        assert not T.LONG_DOUBLE.is_synthesizable()
        assert T.DOUBLE.is_synthesizable()

    def test_pointer_not_synthesizable(self):
        assert not T.PointerType(T.INT).is_synthesizable()

    def test_unknown_size_array_not_synthesizable(self):
        assert not T.ArrayType(T.INT, None).is_synthesizable()
        assert T.ArrayType(T.INT, 8).is_synthesizable()

    def test_typedef_transparency(self):
        alias = T.NamedType("ld", T.LONG_DOUBLE)
        assert not alias.is_synthesizable()


class TestWrap:
    def test_unsigned_wrap(self):
        u7 = T.FpgaIntType(7, signed=False)
        assert u7.wrap(127) == 127
        assert u7.wrap(128) == 0
        assert u7.wrap(200) == 72

    def test_signed_wrap(self):
        s8 = T.FpgaIntType(8, signed=True)
        assert s8.wrap(127) == 127
        assert s8.wrap(128) == -128
        assert s8.wrap(-129) == 127

    @given(st.integers(min_value=-(10**9), max_value=10**9),
           st.integers(min_value=2, max_value=32),
           st.booleans())
    def test_wrap_lands_in_range(self, value, bits, signed):
        ctype = T.FpgaIntType(bits, signed=signed)
        wrapped = ctype.wrap(value)
        assert ctype.min_value <= wrapped <= ctype.max_value

    @given(st.integers(min_value=2, max_value=32), st.booleans())
    def test_wrap_is_identity_in_range(self, bits, signed):
        ctype = T.FpgaIntType(bits, signed=signed)
        assert ctype.wrap(ctype.max_value) == ctype.max_value
        assert ctype.wrap(ctype.min_value) == ctype.min_value


class TestBitsNeeded:
    def test_paper_example(self):
        # ret peaks at 83 -> fpga_uint<7> (§4)
        assert T.bits_needed(83, signed=False) == 7

    def test_signed_needs_extra_bit(self):
        assert T.bits_needed(83, signed=True) == 8

    def test_zero(self):
        assert T.bits_needed(0, signed=False) == 1

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            T.bits_needed(-1, signed=False)

    @given(st.integers(min_value=0, max_value=10**12), st.booleans())
    def test_value_fits_in_chosen_width(self, value, signed):
        bits = T.bits_needed(value, signed)
        ctype = T.FpgaIntType(bits, signed=signed)
        assert ctype.wrap(value) == value


class TestCommonType:
    def test_float_beats_int(self):
        assert T.common_type(T.INT, T.DOUBLE) == T.DOUBLE

    def test_wider_int_wins(self):
        assert T.common_type(T.INT, T.LONG) == T.LONG

    def test_unsigned_wins_tie(self):
        assert T.common_type(T.INT, T.UINT) == T.UINT

    def test_fpga_float_rank(self):
        assert T.common_type(T.FpgaFloatType(8, 71), T.FLOAT) == T.FpgaFloatType(8, 71)

    def test_pointer_arithmetic_keeps_pointer(self):
        ptr = T.PointerType(T.INT)
        assert T.common_type(ptr, T.INT) == ptr


class TestHelpers:
    def test_strip_typedefs_chain(self):
        chained = T.NamedType("a", T.NamedType("b", T.INT))
        assert T.strip_typedefs(chained) == T.INT

    def test_decay(self):
        arr = T.ArrayType(T.FLOAT, 8)
        assert T.decay(arr) == T.PointerType(T.FLOAT)
        assert T.decay(T.INT) == T.INT

    def test_is_predicates(self):
        assert T.is_integer(T.FpgaIntType(5))
        assert T.is_float(T.FpgaFloatType(8, 23))
        assert T.is_arithmetic(T.CHAR)
        assert not T.is_arithmetic(T.PointerType(T.INT))

    def test_replace_struct_recurses(self):
        old = T.StructType("S")
        new = T.StructType("S", (T.StructField("x", T.INT),))
        nested = T.ArrayType(T.PointerType(old), 4)
        replaced = T.replace_struct(nested, "S", new)
        assert replaced.elem.pointee.has_field("x")

    def test_integer_bits_rejects_floats(self):
        with pytest.raises(TypeError):
            T.integer_bits(T.FLOAT)
