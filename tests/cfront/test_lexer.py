"""Lexer tests: tokens, literals, preprocessor handling, errors."""

import pytest

from repro.cfront.lexer import Lexer, Token, tokenize
from repro.errors import LexError


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source_yields_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind == "eof"

    def test_identifier(self):
        toks = tokenize("foo_bar42")
        assert toks[0].kind == "ident"
        assert toks[0].text == "foo_bar42"

    def test_keywords_are_distinguished(self):
        toks = tokenize("int foo")
        assert toks[0].kind == "keyword"
        assert toks[1].kind == "ident"

    def test_all_keywords(self):
        for kw in ("void", "struct", "union", "typedef", "return", "while",
                   "for", "break", "continue", "sizeof", "static", "const"):
            assert tokenize(kw)[0].kind == "keyword"

    def test_punctuators_maximal_munch(self):
        assert texts("a >>= b") == ["a", ">>=", "b"]
        assert texts("a >> b") == ["a", ">>", "b"]
        assert texts("a > b") == ["a", ">", "b"]
        assert texts("x->y") == ["x", "->", "y"]
        assert texts("x - >y") == ["x", "-", ">", "y"]

    def test_scope_resolution_token(self):
        assert texts("hls::stream") == ["hls", "::", "stream"]

    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)


class TestNumbers:
    def test_decimal_int(self):
        tok = tokenize("12345")[0]
        assert tok.kind == "int"
        assert tok.text == "12345"

    def test_hex_int(self):
        tok = tokenize("0xFF")[0]
        assert tok.kind == "int"
        assert int(tok.text, 0) == 255

    def test_int_suffixes(self):
        assert tokenize("42u")[0].kind == "int"
        assert tokenize("42UL")[0].kind == "int"
        assert tokenize("42ll")[0].kind == "int"

    def test_float_forms(self):
        for text in ("1.5", "0.25f", ".5", "2.", "1e3", "1.5e-2", "3E+4f"):
            tok = tokenize(text)[0]
            assert tok.kind == "float", text

    def test_integer_then_member_access_is_not_float(self):
        # `a[1].x` must not lex `1.` as a float... the subset never
        # indexes literals with member access, but `1..5` style ranges
        # don't exist either; check plain int stays int.
        assert tokenize("7")[0].kind == "int"

    def test_float_at_end_of_input_terminates(self):
        tok = tokenize("1.5")[0]
        assert tok.kind == "float"


class TestCharAndString:
    def test_char_literal(self):
        tok = tokenize("'a'")[0]
        assert tok.kind == "char"
        assert tok.text == "a"

    def test_char_escapes(self):
        assert tokenize(r"'\n'")[0].text == "\n"
        assert tokenize(r"'\t'")[0].text == "\t"
        assert tokenize(r"'\0'")[0].text == "\0"

    def test_string_literal(self):
        tok = tokenize('"hello world"')[0]
        assert tok.kind == "string"
        assert tok.text == "hello world"

    def test_string_escapes(self):
        assert tokenize(r'"a\nb"')[0].text == "a\nb"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_unknown_escape_raises(self):
        with pytest.raises(LexError):
            tokenize(r"'\q'")


class TestComments:
    def test_line_comment_skipped(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x\n y */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")


class TestPreprocessor:
    def test_include_skipped(self):
        assert texts("#include <stdio.h>\nint x") == ["int", "x"]

    def test_define_substitution(self):
        assert texts("#define N 16\nint a[N];") == ["int", "a", "[", "16", "]", ";"]

    def test_define_expression_body(self):
        assert texts("#define SZ 4 * 4\nSZ") == ["4", "*", "4"]

    def test_function_like_macro_rejected(self):
        with pytest.raises(LexError):
            tokenize("#define SQ(x) ((x)*(x))\n")

    def test_pragma_token(self):
        toks = tokenize("#pragma HLS pipeline II=1\nint x;")
        assert toks[0].kind == "pragma"
        assert toks[0].text == "HLS pipeline II=1"

    def test_ifdef_lines_skipped(self):
        assert texts("#ifdef FOO\n#endif\nint x") == ["int", "x"]

    def test_unknown_directive_raises(self):
        with pytest.raises(LexError):
            tokenize("#error nope\n")


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("int @ x")

    def test_error_carries_location(self):
        try:
            tokenize("x\n  @")
        except LexError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            pytest.fail("expected LexError")

    def test_eof_inside_suffix_scan_terminates(self):
        # Regression: "" was `in` every membership test, hanging the lexer.
        toks = tokenize("42u")
        assert toks[-1].kind == "eof"
