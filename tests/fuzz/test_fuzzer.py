"""Fuzzer tests: Algorithm 1's loop, seeds, plateau, and corpus."""

import pytest

from repro.errors import FuzzError
from repro.cfront import parse
from repro.fuzz import (
    Corpus,
    FuzzConfig,
    coverage_of_suite,
    fuzz_kernel,
    get_kernel_seed,
)
from repro.hls import SimulatedClock
from repro.hls.clock import ACT_FUZZING

BRANCHY = """
int classify(int a[8], int n) {
    if (n > 8) { n = 8; }
    int pos = 0;
    int neg = 0;
    for (int i = 0; i < n; i++) {
        if (a[i] > 100) { pos += 2; }
        else if (a[i] > 0) { pos++; }
        else if (a[i] < -100) { neg += 2; }
        else if (a[i] < 0) { neg++; }
    }
    if (pos > neg) { return 1; }
    if (neg > pos) { return -1; }
    return 0;
}
int host(int x) {
    int data[8];
    for (int i = 0; i < 8; i++) { data[i] = x + i; }
    return classify(data, 8);
}
"""


class TestKernelSeeds:
    def test_capture_from_host(self):
        unit = parse(BRANCHY)
        seeds = get_kernel_seed(unit, "host", "classify", [5])
        assert seeds == [[[5, 6, 7, 8, 9, 10, 11, 12], 8]]

    def test_missing_call_raises(self):
        unit = parse("int host(int x) { return x; }\nint k(int y) { return y; }")
        with pytest.raises(FuzzError):
            get_kernel_seed(unit, "host", "k", [1])

    def test_crashing_host_raises(self):
        unit = parse(
            "int k(int y) { return y; }\n"
            "int host(int x) { int a[2]; return a[9] + k(x); }"
        )
        with pytest.raises(FuzzError):
            get_kernel_seed(unit, "host", "k", [1])


class TestFuzzLoop:
    def test_reaches_full_coverage_on_branchy_kernel(self):
        unit = parse(BRANCHY)
        report = fuzz_kernel(
            unit, "classify", FuzzConfig(max_execs=3000, plateau_execs=600)
        )
        assert report.coverage_ratio >= 0.9
        assert report.tests_generated > 10
        assert len(report.corpus) >= 3

    def test_seeded_beats_unseeded_or_ties(self):
        unit = parse(BRANCHY)
        seeds = get_kernel_seed(unit, "host", "classify", [5])
        seeded = fuzz_kernel(
            unit, "classify",
            FuzzConfig(max_execs=600, plateau_execs=300), seeds=seeds,
        )
        assert seeded.coverage_ratio > 0.5

    def test_plateau_stops_early(self):
        # A branchless kernel saturates immediately; the plateau counter
        # must stop the loop long before max_execs.
        unit = parse("int k(int x) { return x + 1; }")
        report = fuzz_kernel(
            unit, "k", FuzzConfig(max_execs=100000, plateau_execs=50)
        )
        assert report.execs < 1000

    def test_unknown_kernel_raises(self):
        unit = parse("int k(int x) { return x; }")
        with pytest.raises(FuzzError):
            fuzz_kernel(unit, "nope", FuzzConfig(max_execs=10))

    def test_deterministic_given_seed(self):
        unit = parse(BRANCHY)
        cfg = FuzzConfig(max_execs=400, plateau_execs=200, seed=11)
        a = fuzz_kernel(unit, "classify", cfg)
        b = fuzz_kernel(unit, "classify", cfg)
        assert a.tests_generated == b.tests_generated
        assert a.suite() == b.suite()

    def test_clock_charged(self):
        unit = parse(BRANCHY)
        clock = SimulatedClock()
        report = fuzz_kernel(
            unit, "classify", FuzzConfig(max_execs=200, plateau_execs=100),
            clock=clock,
        )
        assert clock.count(ACT_FUZZING) == 1
        assert clock.seconds == pytest.approx(report.fuzz_seconds)

    def test_captured_seeds_are_not_padded_with_random_ones(self):
        """Algorithm 1 seeds the queue with the captured kernel state(s)
        only; random vectors are a fallback for when there is no host.
        Regression: an extra random seed used to be appended even when
        captured seeds were provided."""
        unit = parse(BRANCHY)
        seeds = get_kernel_seed(unit, "host", "classify", [5])
        report = fuzz_kernel(
            unit, "classify", FuzzConfig(max_execs=len(seeds)), seeds=seeds
        )
        assert report.tests_generated == len(seeds)
        assert report.suite() == seeds

    def test_unseeded_campaign_uses_configured_random_seeds(self):
        unit = parse(BRANCHY)
        report = fuzz_kernel(
            unit, "classify",
            FuzzConfig(max_execs=3, initial_random_seeds=3),
        )
        assert report.tests_generated == 3

    def test_corpus_records_per_entry_coverage_deltas(self):
        """Each kept entry records how many branches *it* newly
        uncovered, so the deltas sum to the campaign's total coverage.
        Regression: the cumulative hit count used to be recorded."""
        unit = parse(BRANCHY)
        report = fuzz_kernel(
            unit, "classify", FuzzConfig(max_execs=2000, plateau_execs=400)
        )
        assert len(report.corpus) >= 2
        deltas = [entry.new_branches for entry in report.corpus]
        assert sum(deltas) == len(report.coverage.hits)
        assert all(0 <= d <= len(report.coverage.hits) for d in deltas)

    def test_crashing_inputs_do_not_kill_campaign(self):
        src = """
        int k(int a[4], int n) {
            return a[n];
        }
        """
        unit = parse(src)
        report = fuzz_kernel(unit, "k", FuzzConfig(max_execs=300, plateau_execs=100))
        assert report.execs > 0  # survived the faults


class TestCoverageOfSuite:
    def test_existing_suite_coverage(self):
        unit = parse(BRANCHY)
        weak = [[[1, 2, 3, 4, 5, 6, 7, 8], 8]]
        cov = coverage_of_suite(unit, "classify", weak)
        assert 0 < cov < 1

    def test_empty_suite_zero(self):
        unit = parse(BRANCHY)
        assert coverage_of_suite(unit, "classify", []) == 0.0


class TestCorpus:
    def test_deduplicates(self):
        corpus = Corpus()
        assert corpus.add([1, [2, 3]])
        assert not corpus.add([1, [2, 3]])
        assert len(corpus) == 1

    def test_round_robin_never_exhausts(self):
        corpus = Corpus()
        corpus.add([1])
        corpus.add([2])
        picks = [corpus.next_input().args[0] for _ in range(5)]
        assert picks == [1, 2, 1, 2, 1]

    def test_empty_corpus_next_is_none(self):
        assert Corpus().next_input() is None

    def test_suite_cap(self):
        corpus = Corpus()
        for i in range(10):
            corpus.add([i])
        assert len(corpus.suite(cap=3)) == 3
        assert len(corpus.suite()) == 10


class TestSeedSalvage:
    """A host that crashes *after* invoking the kernel still produced
    valid seeds; the FuzzError carries them for the caller to salvage."""

    def test_crash_after_calls_salvages_captured_prefix(self):
        unit = parse(
            "int k(int y) { return y; }\n"
            "int host(int x) {\n"
            "    int s = k(x) + k(x + 1);\n"
            "    int a[2];\n"
            "    return a[9] + s;\n"
            "}"
        )
        with pytest.raises(FuzzError) as info:
            get_kernel_seed(unit, "host", "k", [1])
        assert info.value.partial_seeds == [[1], [2]]

    def test_crash_before_any_call_salvages_nothing(self):
        unit = parse(
            "int k(int y) { return y; }\n"
            "int host(int x) { int a[2]; int v = a[9]; return k(x); }"
        )
        with pytest.raises(FuzzError) as info:
            get_kernel_seed(unit, "host", "k", [1])
        assert info.value.partial_seeds == []

    def test_partial_seeds_default_empty(self):
        assert FuzzError("boom").partial_seeds == []
