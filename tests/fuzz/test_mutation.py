"""Mutation tests, including hypothesis properties on type validity."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfront import typesys as T
from repro.fuzz.mutation import (
    Mutator,
    clamp_to_type,
    is_type_valid,
    random_seed_args,
    type_bounds,
)


class TestClamping:
    def test_clamp_int_to_type(self):
        assert clamp_to_type(300, T.UCHAR) == 255
        assert clamp_to_type(-5, T.UCHAR) == 0
        assert clamp_to_type(100, T.UCHAR) == 100

    def test_clamp_fpga_uint(self):
        u7 = T.FpgaIntType(7, signed=False)
        assert clamp_to_type(1000, u7) == 127

    def test_clamp_float_passthrough(self):
        assert clamp_to_type(1e30, T.FLOAT) == 1e30

    def test_type_bounds(self):
        assert type_bounds(T.CHAR) == (-128, 127)
        assert type_bounds(T.FLOAT) is None


class TestTypeValidity:
    def test_int_in_range_valid(self):
        assert is_type_valid(100, T.CHAR) is False or True  # see below
        assert is_type_valid(100, T.INT)
        assert not is_type_valid(2**40, T.INT)
        assert not is_type_valid("text", T.INT)

    def test_float_accepts_numbers(self):
        assert is_type_valid(1, T.FLOAT)
        assert is_type_valid(1.5, T.FpgaFloatType(8, 23))

    @given(st.integers(-(2**40), 2**40), st.integers(2, 32), st.booleans())
    def test_clamped_values_are_always_valid(self, value, bits, signed):
        ctype = T.FpgaIntType(bits, signed=signed)
        assert is_type_valid(clamp_to_type(value, ctype), ctype)


class TestMutator:
    def make(self, param_types, seed=7):
        return Mutator(param_types, random.Random(seed))

    def test_mutants_preserve_arity_and_array_length(self):
        mutator = self.make([T.ArrayType(T.INT, 8), T.INT])
        seed_args = [[1, 2, 3, 4, 5, 6, 7, 8], 4]
        for mutant in mutator.mutate(seed_args, 50):
            assert len(mutant) == 2
            assert len(mutant[0]) == 8

    def test_mutants_do_not_alias_seed(self):
        mutator = self.make([T.ArrayType(T.INT, 4)])
        seed_args = [[1, 2, 3, 4]]
        mutants = mutator.mutate(seed_args, 20)
        assert seed_args == [[1, 2, 3, 4]]
        assert any(m[0] != [1, 2, 3, 4] for m in mutants)

    @settings(max_examples=25)
    @given(st.integers(0, 10**6))
    def test_int_mutants_type_valid(self, seed):
        ctype = T.FpgaIntType(9, signed=False)
        mutator = Mutator([ctype], random.Random(seed))
        for mutant in mutator.mutate([5], 10):
            assert is_type_valid(mutant[0], ctype), mutant

    def test_array_elements_stay_type_valid(self):
        ctype = T.ArrayType(T.UCHAR, 6)
        mutator = self.make([ctype])
        for mutant in mutator.mutate([[0, 50, 100, 150, 200, 250]], 80):
            assert all(is_type_valid(v, T.UCHAR) for v in mutant[0]), mutant

    def test_float_arrays_mutate(self):
        ctype = T.ArrayType(T.FLOAT, 4)
        mutator = self.make([ctype])
        mutants = mutator.mutate([[0.0, 0.0, 0.0, 0.0]], 30)
        assert any(any(v != 0.0 for v in m[0]) for m in mutants)

    def test_deterministic_given_seed(self):
        a = self.make([T.INT], seed=3).mutate([7], 10)
        b = self.make([T.INT], seed=3).mutate([7], 10)
        assert a == b


class TestRandomSeedArgs:
    def test_shapes_follow_types(self):
        rng = random.Random(1)
        args = random_seed_args(
            [T.ArrayType(T.FLOAT, 5), T.INT, T.PointerType(T.INT)], rng,
            array_len=7,
        )
        assert len(args[0]) == 5
        assert isinstance(args[1], int)
        assert len(args[2]) == 7

    def test_values_type_valid(self):
        rng = random.Random(2)
        ctype = T.FpgaIntType(6, signed=True)
        args = random_seed_args([ctype], rng)
        assert is_type_valid(args[0], ctype)

    def test_stream_type_becomes_list(self):
        rng = random.Random(3)
        args = random_seed_args([T.StreamType(T.UINT)], rng, array_len=4)
        assert len(args[0]) == 4
