"""Forum-study tests (Figure 3, Table 1)."""

import pytest

from repro.hls.diagnostics import FORUM_PROPORTIONS, ErrorType
from repro.study import (
    TAXONOMY,
    analyze_corpus,
    classify_post,
    generate_corpus,
    render_table1,
    taxonomy_by_type,
)


class TestTaxonomy:
    def test_six_families_with_paper_post_ids(self):
        assert len(TAXONOMY) == 6
        post_ids = {e.post_id for e in TAXONOMY}
        assert post_ids == {
            "729976", "752508", "595161", "721719", "1117215", "810885"
        }

    def test_by_type_complete(self):
        assert set(taxonomy_by_type()) == set(ErrorType)

    def test_render_table1(self):
        table = render_table1()
        assert "Dynamic Data Structures" in table
        assert "Configuration Exploration" in table


class TestCorpus:
    def test_exact_count(self):
        assert len(generate_corpus(1000)) == 1000
        assert len(generate_corpus(137)) == 137

    def test_deterministic_given_seed(self):
        a = generate_corpus(100, seed=1)
        b = generate_corpus(100, seed=1)
        assert [p.text for p in a] == [p.text for p in b]

    def test_category_mix_matches_figure3(self):
        posts = generate_corpus(1000)
        for error_type, published in FORUM_PROPORTIONS.items():
            count = sum(1 for p in posts if p.true_type == error_type)
            assert count == pytest.approx(published * 1000, abs=1)

    def test_posts_look_like_questions(self):
        posts = generate_corpus(20)
        assert all(len(p.body) > 40 for p in posts)
        assert all(p.title.startswith("[HLS]") for p in posts)


class TestAnalysis:
    def test_classifier_recovers_proportions(self):
        posts = generate_corpus(1000)
        report = analyze_corpus(posts)
        assert report.accuracy > 0.95
        for error_type, published in FORUM_PROPORTIONS.items():
            assert report.proportion(error_type) == pytest.approx(
                published, abs=0.02
            )

    def test_unsupported_types_is_largest_family(self):
        """Figure 3's headline: a quarter of all posts."""
        report = analyze_corpus(generate_corpus(1000))
        largest = max(ErrorType, key=report.proportion)
        assert largest == ErrorType.UNSUPPORTED_DATA_TYPES
        smallest = min(ErrorType, key=report.proportion)
        assert smallest == ErrorType.DYNAMIC_DATA_STRUCTURES

    def test_classify_single_post(self):
        posts = generate_corpus(50)
        hits = sum(1 for p in posts if classify_post(p) == p.true_type)
        assert hits >= 45

    def test_render_includes_paper_reference(self):
        report = analyze_corpus(generate_corpus(200))
        text = report.render()
        assert "paper" in text
        assert "accuracy" in text
