"""Smoke tests: the shipped examples must run and produce their story.

Only the two fastest examples run here (the others exercise the same
code paths the benchmarks cover, at multi-minute cost).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_quickstart_example():
    proc = run_example("quickstart.py")
    assert proc.returncode == 0, proc.stderr
    assert "HLS compatible   : yes" in proc.stdout
    assert "fpga_float<8,71>" in proc.stdout
    assert "Transpiled HLS-C:" in proc.stdout


def test_test_generation_example():
    proc = run_example("test_generation.py")
    assert proc.returncode == 0, proc.stderr
    assert "Captured 1 kernel seed(s)" in proc.stdout
    assert "branch coverage" in proc.stdout


def test_all_examples_at_least_compile():
    for script in sorted(EXAMPLES.glob("*.py")):
        source = script.read_text()
        compile(source, str(script), "exec")
