"""Property-based tests over randomly generated programs.

Hypothesis builds random arithmetic expression trees; the properties
check the deep invariants the repair loop silently relies on:

* printer → parser round-trips preserve evaluation results;
* the interpreter is deterministic;
* cloning a unit never changes behaviour.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.cfront import parse, render
from repro.errors import InterpError
from repro.interp import ExecLimits, run_program

# -- random expression generator ---------------------------------------------

_INT_BINOPS = ["+", "-", "*", "/", "%", "&", "|", "^", "<", "<=", ">",
               ">=", "==", "!=", "&&", "||"]


def _leaf():
    return st.one_of(
        st.integers(-100, 100).map(str),
        st.sampled_from(["a", "b", "c"]),
    )


def _combine(children):
    return st.tuples(
        st.sampled_from(_INT_BINOPS), children, children
    ).map(lambda t: f"({t[1]} {t[0]} {t[2]})")


int_exprs = st.recursive(_leaf(), _combine, max_leaves=12)


def _program_for(expr: str) -> str:
    return f"int f(int a, int b, int c) {{ return {expr}; }}"


def _evaluate(expr: str, args):
    unit = parse(_program_for(expr))
    try:
        return ("ok", run_program(
            unit, "f", list(args), limits=ExecLimits(max_steps=20_000)
        ).value)
    except InterpError as exc:
        return ("fault", type(exc).__name__)


@settings(max_examples=120, deadline=None)
@given(int_exprs, st.tuples(st.integers(-50, 50), st.integers(-50, 50),
                            st.integers(-50, 50)))
def test_render_parse_round_trip_preserves_value(expr, args):
    unit = parse(_program_for(expr))
    rendered = render(unit)
    original = _evaluate(expr, args)
    round_tripped_unit = parse(rendered)
    try:
        round_tripped = ("ok", run_program(
            round_tripped_unit, "f", list(args),
            limits=ExecLimits(max_steps=20_000),
        ).value)
    except InterpError as exc:
        round_tripped = ("fault", type(exc).__name__)
    assert original == round_tripped


@settings(max_examples=60, deadline=None)
@given(int_exprs, st.tuples(st.integers(-50, 50), st.integers(-50, 50),
                            st.integers(-50, 50)))
def test_interpreter_deterministic(expr, args):
    assert _evaluate(expr, args) == _evaluate(expr, args)


@settings(max_examples=60, deadline=None)
@given(int_exprs, st.tuples(st.integers(-50, 50), st.integers(-50, 50),
                            st.integers(-50, 50)))
def test_clone_preserves_behavior(expr, args):
    from repro.cfront import clone

    unit = parse(_program_for(expr))
    copy = clone(unit)
    limits = ExecLimits(max_steps=20_000)

    def run(u):
        try:
            return ("ok", run_program(u, "f", list(args), limits=limits).value)
        except InterpError as exc:
            return ("fault", type(exc).__name__)

    assert run(unit) == run(copy)


@settings(max_examples=80, deadline=None)
@given(int_exprs, st.tuples(st.integers(-50, 50), st.integers(-50, 50),
                            st.integers(-50, 50)))
def test_int_expressions_stay_in_int32(expr, args):
    outcome = _evaluate(expr, args)
    if outcome[0] == "ok":
        assert -(2**31) <= outcome[1] <= 2**31 - 1
