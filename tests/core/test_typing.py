"""Expression type-inference tests (the engine behind pointer rewriting)."""

import pytest

from repro.cfront import typesys as T
from repro.cfront.parser import parse, parse_fragment_expr
from repro.core.typing import TypeEnv, infer_type

SRC = """
typedef int Node_ptr;

struct Node {
    int val;
    Node_ptr next;
};

static struct Node pool[16];
static float weights[8];

int helper(float w) { return (int)w; }

void kernel(int a[8], int n, struct Node *head) {
    int local = 0;
    float f = 1.5;
    Node_ptr cursor = 0;
}
"""


@pytest.fixture
def env():
    unit = parse(SRC, top_name="kernel")
    return TypeEnv(unit, unit.function("kernel"))


def infer(env, text):
    return infer_type(parse_fragment_expr(text), env)


class TestLeaves:
    def test_literals(self, env):
        assert infer(env, "42") == T.INT
        assert infer(env, "1.5") == T.DOUBLE
        assert infer(env, "'c'") == T.CHAR

    def test_params_and_locals(self, env):
        assert infer(env, "n") == T.INT
        assert infer(env, "f") == T.FLOAT
        assert isinstance(T.strip_typedefs(infer(env, "a")), T.ArrayType)

    def test_typedef_preserved(self, env):
        cursor = infer(env, "cursor")
        assert isinstance(cursor, T.NamedType)
        assert cursor.name == "Node_ptr"

    def test_globals_visible(self, env):
        assert isinstance(T.strip_typedefs(infer(env, "weights")), T.ArrayType)

    def test_unknown_is_none(self, env):
        assert infer(env, "ghost") is None


class TestComposite:
    def test_index(self, env):
        assert infer(env, "a[0]") == T.INT
        assert infer(env, "weights[1]") == T.FLOAT

    def test_member_through_pointer(self, env):
        assert infer(env, "head->val") == T.INT
        next_type = infer(env, "head->next")
        assert isinstance(next_type, T.NamedType)

    def test_member_of_pool_element(self, env):
        assert infer(env, "pool[cursor].val") == T.INT

    def test_arithmetic_promotion(self, env):
        assert infer(env, "n + 1") == T.INT
        assert T.is_float(infer(env, "f + 1"))
        assert infer(env, "n < 3") == T.INT

    def test_pointer_decay_in_arithmetic(self, env):
        decayed = infer(env, "a + 1")
        assert isinstance(T.strip_typedefs(decayed), T.PointerType)

    def test_unary(self, env):
        assert infer(env, "-n") == T.INT
        assert infer(env, "!f") == T.INT
        deref = infer(env, "*head")
        assert isinstance(T.strip_typedefs(deref), T.StructType)
        addr = infer(env, "&local")
        assert isinstance(addr, T.PointerType)

    def test_call_return_types(self, env):
        assert infer(env, "helper(f)") == T.INT
        assert infer(env, "sqrt(2.0)") == T.DOUBLE
        assert infer(env, "abs(n)") == T.INT
        assert infer(env, "mystery_fn(n)") is None

    def test_cast(self, env):
        assert infer(env, "(float)n") == T.FLOAT

    def test_assignment_has_target_type(self, env):
        assert infer(env, "local = f") == T.INT

    def test_ternary(self, env):
        assert infer(env, "n ? local : 0") == T.INT

    def test_sizeof(self, env):
        assert infer(env, "sizeof(int)") == T.ULONG
