"""End-to-end HeteroGen pipeline tests on small kernels."""

import pytest

from repro import FuzzConfig, HeteroGen, HeteroGenConfig, SearchConfig
from repro.cfront import parse, render
from repro.hls import SolutionConfig, compile_unit


def small_config(**search_overrides):
    search_overrides.setdefault("max_iterations", 60)
    return HeteroGenConfig(
        fuzz=FuzzConfig(max_execs=300, plateau_execs=150),
        search=SearchConfig(**search_overrides),
    )


class TestPipeline:
    SRC = """
    float kernel(float xs[8]) {
        long double acc = 0.0;
        for (int i = 0; i < 8; i++) {
            long double x = xs[i];
            acc = acc + x;
        }
        return (float)acc;
    }
    void host(int seed) {
        float xs[8];
        for (int i = 0; i < 8; i++) { xs[i] = seed * 0.5 + i; }
        kernel(xs);
    }
    """

    def transpile(self, **kwargs):
        tool = HeteroGen(small_config())
        return tool.transpile(
            self.SRC, kernel_name="kernel",
            host_name="host", host_args=(2,), **kwargs,
        )

    def test_end_to_end_success(self):
        result = self.transpile()
        assert result.hls_compatible
        assert result.behavior_preserved
        assert result.success

    def test_final_unit_compiles_clean(self):
        result = self.transpile()
        report = compile_unit(result.final_unit, result.final_config)
        assert report.ok

    def test_final_source_is_reparseable(self):
        result = self.transpile()
        text = result.final_source()
        assert text
        reparsed = parse(text, top_name="kernel")
        assert reparsed.function("kernel") is not None

    def test_report_accounting(self):
        result = self.transpile()
        assert result.origin_loc > 0
        assert result.delta_loc >= 0
        assert result.fuzz_report is not None
        assert result.fuzz_report.coverage_ratio > 0.5
        summary = result.summary()
        assert "HLS compatible   : yes" in summary

    def test_pre_existing_tests_join_the_suite(self):
        tests = [[[1.0] * 8]]
        result = self.transpile(tests=tests)
        assert result.success

    def test_clean_input_needs_no_repair(self):
        src = """
        int kernel(int a[4]) {
            int total = 0;
            for (int i = 0; i < 4; i++) { total += a[i]; }
            return total;
        }
        """
        tool = HeteroGen(small_config())
        result = tool.transpile(src, kernel_name="kernel")
        assert result.success
        # Only performance edits (if any) were applied.
        assert all(
            edit.startswith(("insert(pipeline", "insert(unroll",
                             "insert(array_partition"))
            for edit in result.applied_edits
        )

    def test_accepts_preparsed_unit(self):
        unit = parse(self.SRC, top_name="kernel")
        tool = HeteroGen(small_config())
        result = tool.transpile(unit, kernel_name="kernel")
        assert result.hls_compatible


class TestBudgetExhaustion:
    def test_unfixable_program_reports_incomplete(self):
        # Value-returning self-recursion: no edit template can convert it,
        # so the search must terminate and report the best (still broken)
        # candidate rather than claim success.
        src = """
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int kernel(int n) {
            if (n > 10) { n = 10; }
            if (n < 0) { n = 0; }
            return fib(n);
        }
        """
        tool = HeteroGen(small_config(max_iterations=20))
        result = tool.transpile(src, kernel_name="kernel")
        assert not result.hls_compatible
        assert not result.success
        assert result.final_unit is None
        # §1: the incomplete report carries the remaining errors and the
        # generated tests, to guide the remaining manual edits.
        assert any("recursive" in e for e in result.remaining_errors)
        assert result.guiding_tests()
        assert "manual edits needed" in result.summary()
