"""Unsupported-data-type edit tests: the Figure 4 chain and widen."""

import pytest

from repro.cfront import nodes as N
from repro.cfront import typesys as T
from repro.cfront.parser import parse
from repro.cfront.visitor import find_all
from repro.core.edits import Candidate, RepairContext
from repro.core.edits.data_types import (
    FPGA_LONG_DOUBLE,
    OpOverloadEdit,
    TypeCastingEdit,
    TypeTransEdit,
    WidenEdit,
)
from repro.difftest import outputs_equal, run_cpu_reference
from repro.hls import SolutionConfig, compile_unit

SRC = """
float kernel(float xs[8]) {
    long double acc = 0.0;
    for (int i = 0; i < 8; i++) {
        long double x = xs[i];
        x = x * 2.0;
        acc = acc + x;
    }
    return (float)acc;
}
"""

TESTS = [[[0.5, 1.5, -2.0, 3.25, 0.0, 1.0, 2.0, -1.0]], [[0.0] * 8]]


def candidate_for(source, top="kernel"):
    unit = parse(source, top_name=top)
    return Candidate(unit=unit, config=SolutionConfig(top_name=top))


def apply_first(edit, cand, diags=()):
    context = RepairContext(kernel_name=cand.config.top_name)
    apps = edit.propose(cand, list(diags), context)
    assert apps, f"{edit.name} proposed nothing"
    result = apps[0].apply(cand)
    assert result is not None
    return result


def behaves_like(original, candidate, kernel, tests):
    ref, _ = run_cpu_reference(original, kernel, tests)
    new, _ = run_cpu_reference(candidate, kernel, tests)
    return all(outputs_equal(list(a), list(b)) for a, b in zip(ref, new))


class TestTypeTrans:
    def test_long_doubles_replaced(self):
        cand = apply_first(TypeTransEdit(), candidate_for(SRC))
        decls = [d.decl for d in find_all(cand.unit, N.DeclStmt)]
        customs = [d for d in decls if d.type == FPGA_LONG_DOUBLE]
        assert {d.name for d in customs} == {"acc", "x"}

    def test_type_errors_cleared_but_overloads_remain(self):
        cand = apply_first(TypeTransEdit(), candidate_for(SRC))
        report = compile_unit(cand.unit, cand.config)
        assert not any("long double" in d.message for d in report.errors)
        assert any(
            "overloaded" in d.message or "explicit cast" in d.message
            for d in report.errors
        )

    def test_behavior_preserved(self):
        cand = apply_first(TypeTransEdit(), candidate_for(SRC))
        assert behaves_like(candidate_for(SRC).unit, cand.unit, "kernel", TESTS)

    def test_no_proposal_without_long_double(self):
        cand = candidate_for("int kernel() { return 1; }")
        context = RepairContext(kernel_name="kernel")
        assert TypeTransEdit().propose(cand, [], context) == []


class TestTypeCasting:
    def test_literals_get_policy_casts(self):
        cand = apply_first(TypeTransEdit(), candidate_for(SRC))
        cand = apply_first(TypeCastingEdit(), cand)
        casts = [
            c for c in find_all(cand.unit, N.Cast) if c.explicit_policy
        ]
        assert casts
        assert all(c.to_type == FPGA_LONG_DOUBLE for c in casts)

    def test_missing_cast_errors_cleared(self):
        cand = apply_first(TypeTransEdit(), candidate_for(SRC))
        cand = apply_first(TypeCastingEdit(), cand)
        report = compile_unit(cand.unit, cand.config)
        assert not any("explicit cast" in d.message for d in report.errors)

    def test_dependence_on_type_trans(self):
        cand = candidate_for(SRC)
        assert not TypeCastingEdit().dependencies_met(cand)


class TestOpOverload:
    def full_chain(self):
        cand = apply_first(TypeTransEdit(), candidate_for(SRC))
        cand = apply_first(TypeCastingEdit(), cand)
        return apply_first(OpOverloadEdit(), cand)

    def test_helpers_generated(self):
        cand = self.full_chain()
        helper_names = {
            f.name for f in cand.unit.functions() if f.name.startswith("thls_")
        }
        assert "thls_sum_80" in helper_names
        assert "thls_mul_80" in helper_names

    def test_all_errors_cleared(self):
        cand = self.full_chain()
        report = compile_unit(cand.unit, cand.config)
        assert report.ok, [str(d) for d in report.errors]

    def test_behavior_preserved_through_full_chain(self):
        cand = self.full_chain()
        assert behaves_like(candidate_for(SRC).unit, cand.unit, "kernel", TESTS)

    def test_compound_assignment_expanded(self):
        src = """
        float kernel(float a) {
            long double acc = 1.0;
            long double b = a;
            acc += b;
            return (float)acc;
        }
        """
        cand = apply_first(TypeTransEdit(), candidate_for(src))
        cand = apply_first(OpOverloadEdit(), cand)
        report = compile_unit(cand.unit, cand.config)
        assert report.ok, [str(d) for d in report.errors]
        assert behaves_like(
            candidate_for(src).unit, cand.unit, "kernel", [[2.5], [0.0]]
        )


class TestWiden:
    def test_widen_doubles_bits(self):
        src = "int kernel(int x) { fpga_uint<4> r = x; return r; }"
        cand = apply_first(WidenEdit(), candidate_for(src))
        decl = find_all(cand.unit, N.DeclStmt)[0].decl
        resolved = T.strip_typedefs(decl.type)
        assert resolved.bits == 8
        assert not resolved.signed

    def test_widen_restores_behavior(self):
        original = candidate_for("int kernel(int x) { int r = x; return r; }")
        narrow = candidate_for("int kernel(int x) { fpga_uint<4> r = x; return r; }")
        assert not behaves_like(original.unit, narrow.unit, "kernel", [[200]])
        widened = narrow
        for _ in range(3):  # 4 -> 8 -> 16 -> 32
            widened = apply_first(WidenEdit(), widened)
        assert behaves_like(original.unit, widened.unit, "kernel", [[200]])

    def test_widen_is_behavior_only(self):
        assert WidenEdit().behavior_only

    def test_nothing_to_widen_at_32_bits(self):
        cand = candidate_for("int kernel(int x) { fpga_uint<32> r = x; return r; }")
        context = RepairContext(kernel_name="kernel")
        assert WidenEdit().propose(cand, [], context) == []
