"""Top-function (configuration) edit tests."""

import pytest

from repro.cfront.parser import parse
from repro.core.edits import Candidate, RepairContext
from repro.core.edits.top_function import FixClockEdit, FixDeviceEdit, SetTopEdit
from repro.hls import SolutionConfig, compile_unit

SRC = """
int helper(int x) { return x + 1; }
int digitrec(int a[4]) { return helper(a[0]); }
"""


def broken_candidate():
    unit = parse(SRC, top_name="digitrec_top")
    config = SolutionConfig(
        top_name="digitrec_top", device="xcmystery", clock_period_ns=0.1
    )
    return Candidate(unit=unit, config=config)


def diags_for(cand):
    return compile_unit(cand.unit, cand.config).errors


class TestSetTop:
    def test_kernel_proposed_first(self):
        cand = broken_candidate()
        context = RepairContext(kernel_name="digitrec")
        apps = SetTopEdit().propose(cand, diags_for(cand), context)
        assert apps[0].label == "set_top(digitrec)"
        # every defined function is eventually explored
        labels = {a.label for a in apps}
        assert "set_top(helper)" in labels

    def test_application_updates_config_only(self):
        cand = broken_candidate()
        context = RepairContext(kernel_name="digitrec")
        apps = SetTopEdit().propose(cand, diags_for(cand), context)
        fixed = apps[0].apply(cand)
        assert fixed.config.top_name == "digitrec"
        assert fixed.unit is cand.unit  # no program change

    def test_no_proposal_without_top_diag(self):
        unit = parse(SRC, top_name="digitrec")
        cand = Candidate(unit=unit, config=SolutionConfig(top_name="digitrec"))
        context = RepairContext(kernel_name="digitrec")
        assert SetTopEdit().propose(cand, [], context) == []


class TestFixClockAndDevice:
    def test_clock_candidates_legal(self):
        cand = broken_candidate()
        context = RepairContext(kernel_name="digitrec")
        # The clock violation is only reported once the device is known
        # (the limit depends on the part) — fix the device first.
        cand = FixDeviceEdit().propose(cand, diags_for(cand), context)[0].apply(cand)
        apps = FixClockEdit().propose(cand, diags_for(cand), context)
        assert apps
        for app in apps:
            fixed = app.apply(cand)
            assert fixed.config.clock_period_ns > 1.0

    def test_device_candidates_known(self):
        cand = broken_candidate()
        context = RepairContext(kernel_name="digitrec")
        apps = FixDeviceEdit().propose(cand, diags_for(cand), context)
        fixed = apps[0].apply(cand)
        from repro.hls import DEVICES

        assert fixed.config.device in DEVICES

    def test_all_three_fixes_clear_errors(self):
        cand = broken_candidate()
        context = RepairContext(kernel_name="digitrec")
        cand = SetTopEdit().propose(cand, diags_for(cand), context)[0].apply(cand)
        cand = FixDeviceEdit().propose(cand, diags_for(cand), context)[0].apply(cand)
        cand = FixClockEdit().propose(cand, diags_for(cand), context)[0].apply(cand)
        assert compile_unit(cand.unit, cand.config).ok
