"""Dependence-graph and proposal-ordering tests (Figure 7c / §5.3)."""

import random
import re

import pytest

from repro.cfront.parser import parse
from repro.core import (
    build_registry,
    chain_probability,
    dependence_graph,
    ordered_applications,
    roots,
    unordered_applications,
)
from repro.core.edits import Candidate, RepairContext
from repro.hls import SolutionConfig, compile_unit
from repro.hls.diagnostics import ErrorType


class TestGraphShape:
    def test_figure7c_chains_present(self):
        graph = dependence_graph(build_registry())
        # constructor -> stream_static (➊ precedes ➌)
        assert "stream_static" in graph["constructor"]
        # flatten -> inst_update and stream_static (➋ precedes ➍)
        assert "inst_update" in graph["flatten"]
        assert "stream_static" in graph["flatten"]
        # insert -> pointer and resize
        assert "pointer" in graph["insert"]
        assert "resize" in graph["insert"]
        # type chain
        assert "type_casting" in graph["type_trans"]
        assert "op_overload" in graph["type_trans"]

    def test_roots_per_family(self):
        registry = build_registry()
        struct_roots = {e.name for e in roots(registry, ErrorType.STRUCT_AND_UNION)}
        assert "constructor" in struct_roots
        assert "flatten" in struct_roots
        assert "inst_update" not in struct_roots
        dyn_roots = {
            e.name for e in roots(registry, ErrorType.DYNAMIC_DATA_STRUCTURES)
        }
        assert "insert" in dyn_roots
        assert "resize" not in dyn_roots

    def test_chain_probability_shrinks_with_length(self):
        registry = build_registry()
        single = chain_probability(["constructor"], registry)
        double = chain_probability(["constructor", "stream_static"], registry)
        assert 0 < double < single < 1


STRUCT_SRC = """
struct S {
    int x;
    int get() { return this->x; }
};
int kernel() {
    struct S s;
    s.x = 1;
    return s.get();
}
"""


class TestOrderedProposals:
    def make(self):
        unit = parse(STRUCT_SRC, top_name="kernel")
        cand = Candidate(unit=unit, config=SolutionConfig(top_name="kernel"))
        diags = compile_unit(cand.unit, cand.config).errors
        return cand, diags, RepairContext(kernel_name="kernel")

    def test_only_dependence_ready_edits_proposed(self):
        registry = build_registry()
        cand, diags, context = self.make()
        edits = registry.edits_for(ErrorType.STRUCT_AND_UNION)
        apps = ordered_applications(edits, cand, diags, context)
        names = {a.label.split("(")[0] for a in apps}
        assert "constructor" in names or "flatten" in names
        assert "inst_update" not in names  # flatten not applied yet

    def test_behavior_only_edits_held_back_while_errors_remain(self):
        registry = build_registry()
        cand, diags, context = self.make()
        apps = ordered_applications(registry.all_edits(), cand, diags, context)
        assert not any(a.label.startswith("resize") for a in apps)
        assert not any(a.label.startswith("widen") for a in apps)

    def test_unordered_ignores_dependences_and_shuffles(self):
        registry = build_registry()
        cand, diags, context = self.make()
        rng_a = random.Random(1)
        rng_b = random.Random(2)
        a = unordered_applications(registry.all_edits(), cand, diags, context, rng_a)
        b = unordered_applications(registry.all_edits(), cand, diags, context, rng_b)
        assert {x.label for x in a} == {x.label for x in b}
        if len(a) > 3:
            assert [x.label for x in a] != [x.label for x in b]

    def test_ordering_prefers_performance_hints(self):
        registry = build_registry()
        unit = parse(
            "void kernel(int a[8]) { for (int i = 0; i < 8; i++) { a[i] = i; } }",
            top_name="kernel",
        )
        cand = Candidate(unit=unit, config=SolutionConfig(top_name="kernel"))
        context = RepairContext(kernel_name="kernel")
        apps = ordered_applications(registry.perf_edits, cand, (), context)
        hints = [a.performance_hint for a in apps]
        assert hints == sorted(hints, reverse=True)

    def test_ordering_is_parse_invariant(self):
        """Hint ties are broken by labels with AST uids masked, so the
        order must not change between parses of the same program even
        though the process-global uid counter has moved on.  Regression:
        raw-label tie-breaks flipped two-loop orderings when the uid
        digit count changed (``@998`` > ``@1002`` but ``@1998`` < ``@2002``)."""
        src = (
            "void kernel(int a[8], int b[8]) {"
            " for (int i = 0; i < 8; i++) { a[i] = i; }"
            " for (int j = 0; j < 8; j++) { b[j] = j; } }"
        )
        registry = build_registry()
        context = RepairContext(kernel_name="kernel")

        def labels():
            unit = parse(src, top_name="kernel")
            cand = Candidate(unit=unit, config=SolutionConfig(top_name="kernel"))
            apps = ordered_applications(registry.perf_edits, cand, (), context)
            return [re.sub(r"@\d+", "@N", a.label) for a in apps]

        first = labels()
        # Burn uids so the second parse lands on different numbers.
        for _ in range(5):
            parse(src, top_name="kernel")
        assert labels() == first


class TestRegistry:
    def test_table2_families_all_populated(self):
        registry = build_registry()
        for error_type in ErrorType:
            assert registry.edits_for(error_type), error_type

    def test_edit_named(self):
        registry = build_registry()
        assert registry.edit_named("stack_trans") is not None
        assert registry.edit_named("perf_pragma") is not None
        assert registry.edit_named("widen") is not None
        assert registry.edit_named("nonsense") is None

    def test_signatures_follow_table2_notation(self):
        registry = build_registry()
        for edit in registry.all_edits():
            assert "$" in edit.signature, edit.name
