"""Dynamic-data-structure edit tests: insert, array_static, stack_trans,
resize — and the combined pool+pointer pipeline on the Figure 2 program."""

import pytest

from repro.cfront import nodes as N
from repro.cfront import typesys as T
from repro.cfront.parser import parse
from repro.cfront.visitor import find_all
from repro.core.edits import Candidate, RepairContext
from repro.core.edits.data_types import PointerEdit
from repro.core.edits.dynamic_data import (
    INITIAL_POOL_SIZE,
    INITIAL_STACK_SIZE,
    ArrayStaticEdit,
    InsertPoolEdit,
    ResizeEdit,
    StackTransEdit,
)
from repro.difftest import outputs_equal, run_cpu_reference
from repro.hls import SolutionConfig, compile_unit


def candidate_for(source, top="kernel"):
    unit = parse(source, top_name=top)
    return Candidate(unit=unit, config=SolutionConfig(top_name=top))


def apply_first(edit, cand, diags=()):
    context = RepairContext(kernel_name=cand.config.top_name)
    apps = edit.propose(cand, list(diags), context)
    assert apps, f"{edit.name} proposed nothing"
    result = apps[0].apply(cand)
    assert result is not None
    return result


def behaves_like(original, candidate, kernel, tests):
    ref, _ = run_cpu_reference(original, kernel, tests)
    new, _ = run_cpu_reference(candidate, kernel, tests)
    return all(
        (a is None and b is None)
        or (a is not None and b is not None and outputs_equal(list(a), list(b)))
        for a, b in zip(ref, new)
    )


class TestInsertPool:
    SRC = """
    struct P { int v; struct P *next; };
    int kernel(int n) {
        if (n > 8) { n = 8; }
        struct P *head = 0;
        for (int i = 0; i < n; i++) {
            struct P *c = (struct P *)malloc(sizeof(struct P));
            c->v = i;
            c->next = head;
            head = c;
        }
        int total = 0;
        struct P *p = head;
        while (p != 0) {
            total += p->v;
            struct P *dead = p;
            p = p->next;
            free(dead);
        }
        return total;
    }
    """

    def test_pool_declared_and_malloc_rewritten(self):
        cand = apply_first(InsertPoolEdit(), candidate_for(self.SRC))
        names = [d.name for d in cand.unit.globals()]
        assert "P_pool" in names
        assert "P_pool_cap" in names
        assert not any(
            c.callee_name == "malloc" for c in find_all(cand.unit, N.Call)
        )
        assert cand.unit.function("P_malloc") is not None

    def test_frees_removed(self):
        cand = apply_first(InsertPoolEdit(), candidate_for(self.SRC))
        assert not any(
            c.callee_name == "free" for c in find_all(cand.unit, N.Call)
        )

    def test_dynamic_memory_errors_cleared(self):
        cand = apply_first(InsertPoolEdit(), candidate_for(self.SRC))
        report = compile_unit(cand.unit, cand.config)
        assert not any("dynamic memory" in d.message for d in report.errors)

    def test_no_proposal_without_malloc(self):
        cand = candidate_for("int kernel() { return 0; }")
        context = RepairContext(kernel_name="kernel")
        assert InsertPoolEdit().propose(cand, [], context) == []


class TestInsertThenPointer:
    def test_full_chain_preserves_behavior(self, tree_source):
        original = parse(tree_source, top_name="kernel")
        cand = Candidate(unit=original, config=SolutionConfig(top_name="kernel"))
        cand = apply_first(InsertPoolEdit(), cand)
        cand = apply_first(PointerEdit(), cand)
        report = compile_unit(cand.unit, cand.config)
        # Only the recursion error should remain.
        assert all("recursive" in d.message for d in report.errors)
        tests = [[[5, 3, 8, 1] + [0] * 12, 4], [[9] * 16, 7], [[0] * 16, 0]]
        assert behaves_like(original, cand.unit, "kernel", tests)

    def test_pointer_gated_on_pool(self, tree_source):
        cand = candidate_for(tree_source)
        context = RepairContext(kernel_name="kernel")
        assert PointerEdit().propose(cand, [], context) == []
        assert not PointerEdit().dependencies_met(cand) or True
        # blind mode proposes anyway (WithoutDependence)
        assert PointerEdit().blind_propose(cand, [], context)


class TestArrayStatic:
    SRC = """
    int kernel(int n) {
        if (n < 1) { n = 1; }
        if (n > 16) { n = 16; }
        float buf[n];
        for (int i = 0; i < n; i++) { buf[i] = i * 2; }
        float total = 0.0;
        for (int i = 0; i < n; i++) { total += buf[i]; }
        return (int)total;
    }
    """

    def test_vla_finitized(self):
        original = parse(self.SRC, top_name="kernel")
        cand = apply_first(
            ArrayStaticEdit(),
            Candidate(unit=original, config=SolutionConfig(top_name="kernel")),
        )
        decl = next(
            d.decl for d in find_all(cand.unit, N.DeclStmt) if d.decl.name == "buf"
        )
        assert decl.vla_size is None
        assert T.strip_typedefs(decl.type).size is not None
        report = compile_unit(cand.unit, cand.config)
        assert report.ok
        tests = [[4], [16], [0], [-3]]
        assert behaves_like(original, cand.unit, "kernel", tests)


class TestStackTrans:
    def test_traverse_converted_and_behavior_kept(self, tree_source):
        original = parse(tree_source, top_name="kernel")
        cand = Candidate(unit=original, config=SolutionConfig(top_name="kernel"))
        cand = apply_first(InsertPoolEdit(), cand)
        cand = apply_first(PointerEdit(), cand)
        report = compile_unit(cand.unit, cand.config)
        cand = apply_first(StackTransEdit(), cand, report.errors)
        report = compile_unit(cand.unit, cand.config)
        assert report.ok, [str(d) for d in report.errors]
        # Small inputs stay within the initial stack.
        small = [[[5, 3, 8, 1] + [0] * 12, 4]]
        assert behaves_like(original, cand.unit, "kernel", small)

    def test_small_stack_diverges_on_deep_trees(self, tree_source):
        """The §6.2 mechanism: a degenerate (sorted) insert order drives
        recursion depth past the initial stack, silently dropping work."""
        original = parse(tree_source, top_name="kernel")
        cand = Candidate(unit=original, config=SolutionConfig(top_name="kernel"))
        cand = apply_first(InsertPoolEdit(), cand)
        cand = apply_first(PointerEdit(), cand)
        report = compile_unit(cand.unit, cand.config)
        cand = apply_first(StackTransEdit(), cand, report.errors)
        deep = [[list(range(16)), 16]]  # sorted: depth 16 > initial stack
        assert not behaves_like(original, cand.unit, "kernel", deep)
        # ... and resizing the *stack* repairs it (the search would pick
        # this application because its siblings do not improve fitness):
        resized = cand
        context = RepairContext(kernel_name="kernel")
        for _ in range(4):
            apps = ResizeEdit().propose(resized, [], context)
            stack_app = next(a for a in apps if "traverse_stk" in a.label)
            resized = stack_app.apply(resized)
        assert behaves_like(original, resized.unit, "kernel", deep)

    def test_value_returning_recursion_not_convertible(self):
        src = """
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int kernel(int n) { return fib(n); }
        """
        cand = candidate_for(src)
        report = compile_unit(cand.unit, cand.config)
        context = RepairContext(kernel_name="kernel")
        assert StackTransEdit().propose(cand, report.errors, context) == []


class TestResize:
    def test_resize_doubles_pool_and_cap(self):
        cand = apply_first(InsertPoolEdit(), candidate_for(TestInsertPool.SRC))
        resized = apply_first(ResizeEdit(), cand)
        pool = next(d for d in resized.unit.globals() if d.name == "P_pool")
        cap = next(d for d in resized.unit.globals() if d.name == "P_pool_cap")
        assert T.strip_typedefs(pool.type).size == INITIAL_POOL_SIZE * 2
        assert cap.init.value == INITIAL_POOL_SIZE * 2

    def test_resize_requires_a_finitizing_edit(self):
        cand = candidate_for("int kernel() { return 0; }")
        assert not ResizeEdit().dependencies_met(cand)

    def test_blind_resize_finds_cap_convention(self):
        cand = apply_first(InsertPoolEdit(), candidate_for(TestInsertPool.SRC))
        context = RepairContext(kernel_name="kernel")
        # Strip the edit history: blind mode must still find the target.
        bare = Candidate(unit=cand.unit, config=cand.config)
        apps = ResizeEdit().blind_propose(bare, [], context)
        assert any("P_pool" in a.label for a in apps)
