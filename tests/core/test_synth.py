"""Evidence-driven parameter synthesis: derivation rules, the bounds
they guarantee, and the search-level effect on a real subject.

The derivation rules are pure functions of the evidence bundle, so most
of this file is property-shaped: a synthesized parameter must cover
everything the profile observed, and must never exceed the value the
enumerated ladder it replaces would have accepted.
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.baselines import default_config, run_variant
from repro.cfront import nodes as N
from repro.cfront import typesys as T
from repro.cfront.parser import parse
from repro.cfront.visitor import find_all
from repro.core.edits.dynamic_data import DEFAULT_ARRAY_SIZE, INITIAL_STACK_SIZE
from repro.core.synth import (
    SAFETY_MARGIN,
    Evidence,
    current_capacity,
    derive_array_extent,
    derive_bitwidth,
    derive_partition_factor,
    derive_pipeline_ii,
    derive_stack_capacity,
    estimated_trips,
    max_observed_by_name,
    reachable_functions,
    synthesis_default,
    unroll_profitable,
)
from repro.interp.coverage import ValueProfile, VarRange
from repro.subjects import get_subject

# A tiny unit providing real AST nodes (an Ident size expression, a
# counted loop, a call chain) for the derivations that inspect syntax.
SYNTH_SRC = """
int helper(int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) { acc += i; }
    return acc;
}
int kernel(int n) { return helper(n); }
int bystander(int n) {
    int out = 0;
    for (int j = 0; j < 16; j++) { out += n; }
    return out;
}
"""

UNIT = parse(SYNTH_SRC)


def evidence_with(name: str = "", value: float = 0.0, depth: int = 0,
                  func: str = "rec") -> Evidence:
    profile = ValueProfile()
    if name:
        profile.observe(1, name, value)
    if depth:
        profile.observe_call(func, depth)
    return Evidence(kernel_name="kernel", profile=profile)


class TestStackCapacity:
    def test_silent_without_profile(self):
        assert derive_stack_capacity(Evidence(), "rec") is None

    def test_silent_when_never_profiled(self):
        assert derive_stack_capacity(evidence_with(), "rec") is None

    def test_margin_over_observed_depth(self):
        ev = evidence_with(depth=7)
        assert derive_stack_capacity(ev, "rec") == 7 + SAFETY_MARGIN

    @given(st.integers(1, 500))
    def test_bounds(self, depth):
        """Covers every observed activation; never exceeds the doubling
        ladder's stopping point (the first power-of-two capacity the
        enumerated ``resize`` sequence would have accepted)."""
        cap = derive_stack_capacity(evidence_with(depth=depth), "rec")
        assert cap is not None and cap >= depth
        ladder = INITIAL_STACK_SIZE
        while ladder < cap:
            ladder *= 2
        assert cap <= ladder


class TestArrayExtent:
    IDENT = next(
        node for node in UNIT.walk()
        if isinstance(node, N.Ident) and node.name == "n"
    )

    def test_silent_for_non_ident_size(self):
        ev = evidence_with("n", 10)
        assert derive_array_extent(ev, None) is None

    def test_silent_without_observation(self):
        assert derive_array_extent(evidence_with(), self.IDENT) is None

    @given(st.integers(1, DEFAULT_ARRAY_SIZE))
    def test_bounds(self, observed):
        """At least the maximum observed use, at most the 1024-entry
        type-based over-estimate the fallback guess would have used."""
        ev = evidence_with("n", observed)
        extent = derive_array_extent(ev, self.IDENT)
        assert extent is not None and extent >= observed
        assert extent <= DEFAULT_ARRAY_SIZE
        assert extent & (extent - 1) == 0  # power of two


class TestBitwidth:
    def test_silent_when_current_width_suffices(self):
        rng = VarRange("x")
        rng.observe(100.0)  # needs 7 bits unsigned
        assert derive_bitwidth(rng, 8) is None

    def test_silent_for_floats_and_unobserved(self):
        rng = VarRange("x")
        assert derive_bitwidth(rng, 8) is None
        rng.observe(1.5)
        assert derive_bitwidth(rng, 8) is None

    @given(st.integers(0, 2**30), st.booleans(),
           st.sampled_from([2, 4, 8, 16, 32]))
    def test_bounds(self, magnitude, signed, current):
        rng = VarRange("x")
        rng.observe(float(-magnitude if signed else magnitude))
        derived = derive_bitwidth(rng, current)
        needed = T.bits_needed(rng.max_abs, rng.needs_sign)
        if needed <= current:
            assert derived is None
        else:
            assert derived == min(32, needed + SAFETY_MARGIN)
            assert derived >= min(32, needed)


class TestPragmaDerivations:
    def test_partition_factor_largest_divisor(self):
        assert derive_partition_factor(16, (2, 3, 4)) == 4
        assert derive_partition_factor(12, (2, 3, 4, 8)) == 4
        assert derive_partition_factor(7, (2, 4)) is None

    def test_pipeline_ii_is_one(self):
        assert derive_pipeline_ii() == 1

    def test_unroll_profitability(self):
        helper = UNIT.function("helper")
        assert helper is not None and helper.body is not None
        # `acc += i` indexes nothing: pure compute, always profitable.
        pure = UNIT.function("bystander")
        assert unroll_profitable(pure.body, {})
        indexed = parse(
            "int f(int a[8]) { int s = 0;"
            " for (int i = 0; i < 8; i++) { s += a[i]; } return s; }"
        ).function("f")
        assert not unroll_profitable(indexed.body, {})
        assert unroll_profitable(indexed.body, {"a": 2})


class TestLoopEvidence:
    def test_reachable_closure_excludes_bystanders(self):
        assert reachable_functions(UNIT, "kernel") == {"kernel", "helper"}

    def test_undefined_root_keeps_everything(self):
        assert reachable_functions(UNIT, "missing") is None

    def test_trips_from_profiled_bound(self):
        loops = find_all(UNIT, N.For)
        counted = next(
            l for l in loops
            if any(isinstance(n, N.Ident) and n.name == "n"
                   for n in l.cond.walk())
        )
        ev = evidence_with("n", 12)
        assert estimated_trips(ev.profile, counted) == 12

    def test_trips_from_literal_bound(self):
        loops = find_all(UNIT, N.For)
        literal = next(
            l for l in loops
            if any(isinstance(n, N.IntLit) and n.value == 16
                   for n in l.cond.walk())
        )
        assert estimated_trips(None, literal) == 16

    def test_trips_silent_without_evidence(self):
        loops = find_all(UNIT, N.For)
        counted = next(
            l for l in loops
            if any(isinstance(n, N.Ident) and n.name == "n"
                   for n in l.cond.walk())
        )
        assert estimated_trips(evidence_with().profile, counted) is None


class TestHelpers:
    def test_max_observed_unions_shadowing_decls(self):
        profile = ValueProfile()
        profile.observe(1, "n", 5)
        profile.observe(2, "n", 9)
        assert max_observed_by_name(profile, "n") == 9.0
        assert max_observed_by_name(profile, "m") is None

    def test_current_capacity_reads_cap_convention(self):
        unit = parse("static int rec_stk_cap = 4;\nint f() { return 0; }")
        assert current_capacity(unit, "rec_stk") == 4
        assert current_capacity(unit, "other") is None


class TestSynthesisDefault:
    def test_env_values(self, monkeypatch):
        monkeypatch.delenv("REPRO_SYNTH", raising=False)
        assert synthesis_default() is False
        for off in ("0", "false", "off", "no", ""):
            monkeypatch.setenv("REPRO_SYNTH", off)
            assert synthesis_default() is False
        for on in ("1", "true", "on", "yes"):
            monkeypatch.setenv("REPRO_SYNTH", on)
            assert synthesis_default() is True


class TestSearchEffect:
    """Synthesis on the paper's P3 (the §6.2 stack-resize subject):
    still repairs, with a fraction of the candidate evaluations —
    the full ten-subject sweep (and the bit-identity claim for
    synthesis off) lives in ``benchmarks/bench_synth.py``."""

    def test_p3_repairs_with_fewer_candidates(self):
        subject = get_subject("P3")

        enum_cfg = default_config()
        enum_cfg.search.use_synthesis = False
        enumerated = run_variant(subject, "HeteroGen", enum_cfg)

        synth_cfg = default_config()
        synth_cfg.search.use_synthesis = True
        synthesized = run_variant(subject, "HeteroGen", synth_cfg)

        assert enumerated.search_result.success
        assert synthesized.search_result.success
        # Enumeration needs ~73 attempts here, synthesis ~18; the bound
        # leaves slack for edit-family tweaks without hiding regressions.
        assert synthesized.search_result.stats.attempts <= 30
        assert (synthesized.search_result.stats.attempts * 3
                <= enumerated.search_result.stats.attempts)
        # The derived repair is an exact capacity, not a doubling.
        assert any(
            a.startswith("resize(") and "cap=" in a
            for a in synthesized.search_result.best.candidate.applied
        )
