"""Loop-parallelization and performance-exploration edit tests."""

import pytest

from repro.cfront import nodes as N
from repro.cfront.parser import parse
from repro.cfront.visitor import find_all
from repro.core.edits import Candidate, RepairContext
from repro.core.edits.loops import (
    ExploreUnrollEdit,
    IndexStaticEdit,
    MemResetEdit,
    PerfPragmaEdit,
)
from repro.difftest import outputs_equal, run_cpu_reference
from repro.hls import SolutionConfig, check_style, compile_unit, estimate
from repro.hls.pragmas import collect_pragmas

VARIABLE_BOUND = """
void kernel(int a[32], int n) {
    if (n > 32) { n = 32; }
    for (int i = 0; i < n; i++) {
        #pragma HLS unroll factor=4
        a[i] = a[i] * 2;
    }
}
"""

DATAFLOW_UNROLL = """
void kernel(int a[8]) {
    #pragma HLS dataflow
    for (int i = 0; i < 8; i++) {
        #pragma HLS unroll factor=64
        a[i] = i;
    }
}
"""


def candidate_for(source, top="kernel"):
    unit = parse(source, top_name=top)
    return Candidate(unit=unit, config=SolutionConfig(top_name=top))


def diags_for(cand):
    return compile_unit(cand.unit, cand.config).errors


class TestIndexStatic:
    def test_adds_tripcount_and_clears_error(self):
        cand = candidate_for(VARIABLE_BOUND)
        diags = diags_for(cand)
        context = RepairContext(kernel_name="kernel")
        apps = IndexStaticEdit().propose(cand, diags, context)
        assert apps
        fixed = apps[0].apply(cand)
        assert compile_unit(fixed.unit, fixed.config).ok
        tc = next(
            p for p in collect_pragmas(fixed.unit)
            if p.directive == "loop_tripcount"
        )
        # Bound guess comes from the largest indexed array (32).
        assert tc.int_option("max") == 32

    def test_behavior_unchanged(self):
        cand = candidate_for(VARIABLE_BOUND)
        context = RepairContext(kernel_name="kernel")
        fixed = IndexStaticEdit().propose(cand, diags_for(cand), context)[0].apply(cand)
        tests = [[[3] * 32, 10]]
        ref, _ = run_cpu_reference(cand.unit, "kernel", tests)
        new, _ = run_cpu_reference(fixed.unit, "kernel", tests)
        assert outputs_equal(list(ref[0]), list(new[0]))


class TestExploreUnroll:
    def test_factor_reduction_clears_presynthesis_error(self):
        cand = candidate_for(DATAFLOW_UNROLL)
        diags = diags_for(cand)
        context = RepairContext(kernel_name="kernel")
        apps = ExploreUnrollEdit().propose(cand, diags, context)
        reduce = next(a for a in apps if "factor=8" in a.label)
        fixed = reduce.apply(cand)
        assert compile_unit(fixed.unit, fixed.config).ok

    def test_delete_variant_also_clears(self):
        cand = candidate_for(DATAFLOW_UNROLL)
        context = RepairContext(kernel_name="kernel")
        apps = ExploreUnrollEdit().propose(cand, diags_for(cand), context)
        delete = next(a for a in apps if "delete" in a.label)
        fixed = delete.apply(cand)
        assert compile_unit(fixed.unit, fixed.config).ok
        assert not any(
            p.directive == "unroll" for p in collect_pragmas(fixed.unit)
        )

    def test_bigger_factors_hint_faster(self):
        cand = candidate_for(DATAFLOW_UNROLL)
        context = RepairContext(kernel_name="kernel")
        apps = ExploreUnrollEdit().propose(cand, diags_for(cand), context)
        hints = {a.label: a.performance_hint for a in apps}
        f8 = next(v for k, v in hints.items() if "factor=8" in k)
        f2 = next(v for k, v in hints.items() if "factor=2" in k)
        assert f8 > f2


class TestMemReset:
    SRC = """
    static int acc[8];
    void kernel(int a[8]) {
        for (int i = 0; i < 8; i++) {
            acc[i] += a[i];
        }
    }
    """

    def test_reset_loop_inserted_before_accumulation(self):
        cand = candidate_for(self.SRC)
        context = RepairContext(kernel_name="kernel")
        apps = MemResetEdit().propose(cand, [], context)
        assert apps
        fixed = apps[0].apply(cand)
        func = fixed.unit.function("kernel")
        loops = [s for s in func.body.items if isinstance(s, N.For)]
        assert len(loops) == 2  # reset loop + original

    def test_behavior_preserved(self):
        cand = candidate_for(self.SRC)
        context = RepairContext(kernel_name="kernel")
        fixed = MemResetEdit().propose(cand, [], context)[0].apply(cand)
        tests = [[[1, 2, 3, 4, 5, 6, 7, 8]]]
        ref, _ = run_cpu_reference(cand.unit, "kernel", tests)
        new, _ = run_cpu_reference(fixed.unit, "kernel", tests)
        assert outputs_equal(list(ref[0]), list(new[0]))


class TestPerfPragma:
    CLEAN = """
    void kernel(int a[64], int out[64]) {
        for (int i = 0; i < 64; i++) {
            out[i] = a[i] * 3;
        }
    }
    """

    def proposals(self):
        cand = candidate_for(self.CLEAN)
        context = RepairContext(kernel_name="kernel")
        return cand, PerfPragmaEdit().propose(cand, [], context)

    def test_proposes_pipeline_unroll_partition(self):
        _cand, apps = self.proposals()
        labels = " ".join(a.label for a in apps)
        assert "pipeline" in labels
        assert "unroll" in labels
        assert "array_partition" in labels

    def test_valid_placements_pass_style_and_speed_up(self):
        cand, apps = self.proposals()
        base = estimate(cand.unit, cand.config).cycles
        pipeline = next(a for a in apps if "pipeline II=1, loop" in a.label)
        fixed = pipeline.apply(cand)
        assert check_style(fixed.unit) == []
        assert estimate(fixed.unit, fixed.config).cycles < base

    def test_naive_placement_is_style_invalid(self):
        """The search must have *something* for the checker to reject —
        that asymmetry is the WithoutChecker ablation (Figure 9)."""
        cand, apps = self.proposals()
        naive = [a for a in apps if "before-loop" in a.label]
        assert naive
        broken = naive[0].apply(cand)
        assert check_style(broken.unit)

    def test_partition_factors_divide_size(self):
        _cand, apps = self.proposals()
        partition_labels = [a.label for a in apps if "array_partition" in a.label]
        for label in partition_labels:
            factor = int(label.split("factor=")[1].split(",")[0])
            assert 64 % factor == 0

    def test_no_duplicate_proposals_after_application(self):
        cand, apps = self.proposals()
        pipeline = next(a for a in apps if "pipeline II=1, loop" in a.label)
        fixed = pipeline.apply(cand)
        context = RepairContext(kernel_name="kernel")
        again = PerfPragmaEdit().propose(fixed, [], context)
        assert not any(a.label == pipeline.label for a in again)
