"""Struct-and-union edit tests: both Figure 7 repair chains."""

import pytest

from repro.cfront import nodes as N
from repro.cfront.parser import parse
from repro.cfront.visitor import find_all
from repro.core.edits import Candidate, RepairContext
from repro.core.edits.structs import (
    ConstructorEdit,
    FlattenEdit,
    InstStaticEdit,
    InstUpdateEdit,
    StreamStaticEdit,
)
from repro.difftest import outputs_equal, run_cpu_reference
from repro.hls import SolutionConfig, compile_unit

SRC = """
struct If2 {
    hls::stream<unsigned> &in;
    hls::stream<unsigned> &out;
    unsigned gain;

    void do1() {
        for (int i = 0; i < 4; i++) {
            if (this->in.empty()) {
                break;
            }
            this->out.write(this->in.read() * this->gain);
        }
    }
};

void kernel(unsigned a[4], unsigned b[4]) {
    #pragma HLS dataflow
    hls::stream<unsigned> src;
    hls::stream<unsigned> tmp;
    hls::stream<unsigned> dst;
    for (int i = 0; i < 4; i++) { src.write(a[i]); }
    struct If2 s1;
    s1.in = src;
    s1.out = tmp;
    s1.gain = 2;
    struct If2 s2;
    s2.in = tmp;
    s2.out = dst;
    s2.gain = 3;
    s1.do1();
    s2.do1();
    for (int i = 0; i < 4; i++) { b[i] = dst.read(); }
}
"""

TESTS = [[[1, 2, 3, 4], [0, 0, 0, 0]], [[9, 0, 9, 0], [0, 0, 0, 0]]]


def candidate_for(source=SRC, top="kernel"):
    unit = parse(source, top_name=top)
    return Candidate(unit=unit, config=SolutionConfig(top_name=top))


def diags_for(cand):
    return compile_unit(cand.unit, cand.config).errors


def apply_labeled(edit, cand, diags, label_part):
    context = RepairContext(kernel_name="kernel")
    apps = edit.propose(cand, diags, context)
    app = next(a for a in apps if label_part in a.label)
    result = app.apply(cand)
    assert result is not None
    return result


def behaves_like(original, candidate, tests=TESTS):
    ref, _ = run_cpu_reference(original, "kernel", tests)
    new, _ = run_cpu_reference(candidate, "kernel", tests)
    return all(outputs_equal(list(a), list(b)) for a, b in zip(ref, new))


class TestConstructorChain:
    """Figure 7's ➊➌ path: constructor + static streams."""

    def test_constructor_inserted(self):
        cand = candidate_for()
        fixed = apply_labeled(ConstructorEdit(), cand, diags_for(cand), "If2")
        struct = fixed.unit.struct("If2")
        assert struct.type.has_constructor
        assert struct.methods[0].is_constructor

    def test_full_chain_compiles_and_behaves(self):
        cand = candidate_for()
        fixed = apply_labeled(ConstructorEdit(), cand, diags_for(cand), "If2")
        for stream_name in ("src", "tmp", "dst"):
            fixed = apply_labeled(
                StreamStaticEdit(), fixed, diags_for(fixed), stream_name
            )
        report = compile_unit(fixed.unit, fixed.config)
        assert report.ok, [str(d) for d in report.errors]
        assert behaves_like(cand.unit, fixed.unit)

    def test_stream_static_requires_predecessor(self):
        cand = candidate_for()
        assert not StreamStaticEdit().dependencies_met(cand)

    def test_constructor_idempotent(self):
        cand = candidate_for()
        fixed = apply_labeled(ConstructorEdit(), cand, diags_for(cand), "If2")
        context = RepairContext(kernel_name="kernel")
        again = ConstructorEdit().propose(fixed, diags_for(fixed), context)
        assert all(a.apply(fixed) is None for a in again)


class TestFlattenChain:
    """Figure 7's ➋➍ path: flatten + call-site update."""

    def flattened(self):
        cand = candidate_for()
        fixed = apply_labeled(FlattenEdit(), cand, diags_for(cand), "If2")
        return cand, fixed

    def test_methods_become_free_functions(self):
        _cand, fixed = self.flattened()
        struct = fixed.unit.struct("If2")
        assert struct.methods == []
        assert struct.type.method_names == ()
        free = fixed.unit.function("If2_do1")
        assert free is not None
        assert free.params[0].name == "self"

    def test_this_arrow_rewritten_to_self_dot(self):
        _cand, fixed = self.flattened()
        free = fixed.unit.function("If2_do1")
        members = find_all(free.body, N.Member)
        assert not any(
            isinstance(m.obj, N.Ident) and m.obj.name == "this" for m in members
        )

    def test_inst_update_rewrites_call_sites(self):
        cand, fixed = self.flattened()
        fixed = apply_labeled(InstUpdateEdit(), fixed, diags_for(fixed), "If2")
        kernel = fixed.unit.function("kernel")
        calls = [
            c for c in find_all(kernel.body, N.Call)
            if c.callee_name == "If2_do1"
        ]
        assert len(calls) == 2

    def test_full_flatten_chain_compiles_and_behaves(self):
        cand, fixed = self.flattened()
        fixed = apply_labeled(InstUpdateEdit(), fixed, diags_for(fixed), "If2")
        for stream_name in ("src", "tmp", "dst"):
            fixed = apply_labeled(
                StreamStaticEdit(), fixed, diags_for(fixed), stream_name
            )
        report = compile_unit(fixed.unit, fixed.config)
        assert report.ok, [str(d) for d in report.errors]
        assert behaves_like(cand.unit, fixed.unit)

    def test_inst_update_requires_flatten(self):
        cand = candidate_for()
        assert not InstUpdateEdit().dependencies_met(cand)
        assert FlattenEdit().dependencies_met(cand)


class TestInstStatic:
    def test_instances_made_static(self):
        cand = candidate_for()
        fixed = apply_labeled(InstStaticEdit(), cand, diags_for(cand), "s1")
        decl = next(
            d.decl for d in find_all(fixed.unit, N.DeclStmt)
            if d.decl.name == "s1"
        )
        assert decl.is_static
