"""Observability integration with the core pipeline.

Covers the ``SearchStats`` derived-ratio zero-division branches, the
seed-capture failure path (structured event + logging warning instead of
the old silent ``except: pass``), and the span/metric coverage of one
traced transpile.
"""

from __future__ import annotations

import logging

from repro.core import HeteroGen, HeteroGenConfig, SearchConfig
from repro.core.search import SearchStats
from repro.fuzz import FuzzConfig
from repro.obs import (
    SPAN_EVALUATE,
    SPAN_FUZZ,
    SPAN_HLS_COMPILE,
    SPAN_ITERATION,
    SPAN_SEARCH,
    SPAN_SEED_CAPTURE,
    SPAN_TRANSPILE,
    TraceRecorder,
    scoped_recorder,
)

KERNEL_SRC = """
int kernel(int data[8], int n) {
    int acc = 0;
    for (int i = 0; i < n; i += 1) {
        acc += data[i] * 2;
    }
    return acc;
}
"""


def _quick_config():
    return HeteroGenConfig(
        fuzz=FuzzConfig(max_execs=60, seed=7),
        search=SearchConfig(max_iterations=8, seed=7, workers=1),
    )


# ---------------------------------------------------------------------------
# SearchStats derived ratios
# ---------------------------------------------------------------------------


def test_search_stats_ratios_are_zero_without_activity():
    stats = SearchStats()
    assert stats.hls_invocation_ratio == 0.0
    assert stats.cache_hit_ratio == 0.0
    assert stats.store_hit_ratio == 0.0


def test_search_stats_ratios_with_activity():
    stats = SearchStats(attempts=8, hls_invocations=2, cache_hits=6,
                        store_hits=3, store_misses=1)
    assert stats.hls_invocation_ratio == 0.25
    assert stats.cache_hit_ratio == 0.75
    assert stats.store_hit_ratio == 0.75


def test_search_stats_store_ratio_counts_both_outcomes_as_lookups():
    assert SearchStats(store_misses=4).store_hit_ratio == 0.0
    assert SearchStats(store_hits=4).store_hit_ratio == 1.0


# ---------------------------------------------------------------------------
# Seed-capture failure: warn loudly, fall back quietly
# ---------------------------------------------------------------------------


def test_seed_capture_failure_warns_and_emits_event(caplog):
    recorder = TraceRecorder()
    with scoped_recorder(recorder), \
            caplog.at_level(logging.WARNING, logger="repro.core.heterogen"):
        result = HeteroGen(_quick_config()).transpile(
            KERNEL_SRC,
            kernel_name="kernel",
            host_name="no_such_host",
            host_args=[3],
        )
    # The run still completes on random fuzzer seeding.
    assert result.search_result.best is not None
    assert "kernel seed capture failed" in caplog.text
    assert "no_such_host" in caplog.text
    (event,) = [e for e in recorder.events()
                if e.name == "seed_capture_failed"]
    assert event.level == "warning"
    assert event.args["host"] == "no_such_host"
    assert event.args["kernel"] == "kernel"
    assert event.args["error"]
    # The event is parented inside the seed-capture span.
    spans = {s.sid: s for s in recorder.spans()}
    assert spans[event.parent].name == SPAN_SEED_CAPTURE
    assert recorder.metrics.counter_value("fuzz.seed_capture_failures") == 1.0


def test_seed_capture_success_emits_no_warning(caplog):
    recorder = TraceRecorder()
    with scoped_recorder(recorder), \
            caplog.at_level(logging.WARNING, logger="repro.core.heterogen"):
        source = KERNEL_SRC + """
int host(int n) {
    int data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    return kernel(data, n);
}
"""
        HeteroGen(_quick_config()).transpile(
            source, kernel_name="kernel", host_name="host", host_args=[4],
        )
    assert "seed capture failed" not in caplog.text
    assert not [e for e in recorder.events()
                if e.name == "seed_capture_failed"]
    assert recorder.metrics.counter_value("fuzz.seed_capture_failures") == 0.0


# ---------------------------------------------------------------------------
# Span and metric coverage of one traced run
# ---------------------------------------------------------------------------


def test_traced_transpile_covers_every_pipeline_stage():
    recorder = TraceRecorder()
    with scoped_recorder(recorder):
        HeteroGen(_quick_config()).transpile(KERNEL_SRC, kernel_name="kernel")
    names = {s.name for s in recorder.spans()}
    for expected in (SPAN_TRANSPILE, SPAN_FUZZ, SPAN_SEARCH, SPAN_ITERATION,
                     SPAN_EVALUATE, SPAN_HLS_COMPILE):
        assert expected in names, f"missing span {expected!r}"
    roots = [s for s in recorder.spans() if s.parent == 0]
    assert [r.name for r in roots] == [SPAN_TRANSPILE]

    counters = recorder.metrics.snapshot()["counters"]
    assert any(k.startswith("fuzz.execs") for k in counters)
    assert any(k.startswith("cache.lookups") for k in counters)
    assert any(k.startswith("hls.compile.invocations") for k in counters)


def test_untraced_transpile_records_nothing():
    from repro.obs import NULL_RECORDER

    with scoped_recorder(NULL_RECORDER):
        result = HeteroGen(_quick_config()).transpile(
            KERNEL_SRC, kernel_name="kernel"
        )
    assert result.search_result.best is not None


def test_seed_capture_failure_salvages_partial_seeds(caplog):
    """Host crashes *after* invoking the kernel: the captured prefix is
    salvaged into the suite and the event reports exactly how much."""
    source = KERNEL_SRC + """
int host(int n) {
    int data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    int r = kernel(data, n);
    int oob[2];
    return r + oob[9];
}
"""
    recorder = TraceRecorder()
    with scoped_recorder(recorder), \
            caplog.at_level(logging.WARNING, logger="repro.core.heterogen"):
        result = HeteroGen(_quick_config()).transpile(
            source, kernel_name="kernel", host_name="host", host_args=[4],
        )
    assert result.search_result.best is not None
    assert "salvaged 1 partial seed" in caplog.text
    (event,) = [e for e in recorder.events()
                if e.name == "seed_capture_failed"]
    assert event.args["seeds_salvaged"] == 1
    assert recorder.metrics.counter_value("fuzz.seed_capture_failures") == 1.0
    assert recorder.metrics.counter_value("fuzz.seeds_salvaged") == 1.0


def test_seed_capture_failure_without_calls_reports_zero_salvaged(caplog):
    recorder = TraceRecorder()
    with scoped_recorder(recorder), \
            caplog.at_level(logging.WARNING, logger="repro.core.heterogen"):
        HeteroGen(_quick_config()).transpile(
            KERNEL_SRC,
            kernel_name="kernel",
            host_name="no_such_host",
            host_args=[3],
        )
    (event,) = [e for e in recorder.events()
                if e.name == "seed_capture_failed"]
    assert event.args["seeds_salvaged"] == 0
    assert recorder.metrics.counter_value("fuzz.seeds_salvaged") == 0.0
