"""End-to-end guarantees of the incremental-evaluation layer.

The contract: with incremental caches on (or in cross-check mode), every
observable of a transpile run — diagnostics, diff reports, fitness,
search history, and the simulated-clock charge journal — is bit-identical
to a run with ``REPRO_INCREMENTAL=0``.  Caches may only change wall-clock
time, never results.

The full ten-subject sweep is expensive; tier-1 runs two subjects and the
rest are gated behind ``REPRO_CROSSCHECK_FULL=1`` (the CI `incremental`
job sets it).
"""

from __future__ import annotations

import contextlib
import copy
import itertools
import os

import pytest

from repro.baselines.variants import default_config, make_heterogen
from repro.cfront import nodes as N
from repro.cfront import parse
from repro.cfront.fingerprint import forced_mode, incremental_mode
from repro.cfront.printer import render
from repro.core.edits.base import Candidate
from repro.core.evalcache import cached_candidate_key, candidate_key
from repro.hls.clock import SimulatedClock
from repro.hls.compiler import compile_unit
from repro.hls.memo import clear_analysis_caches
from repro.hls.platform import SolutionConfig
from repro.hls.schedule import estimate
from repro.hls.stylecheck import check_style
from repro.interp.compile import CompiledProgram, compile_program
from repro.obs import SPAN_TRANSPILE, TraceRecorder, scoped_recorder
from repro.subjects import all_subjects, get_subject

FULL_SWEEP = os.environ.get("REPRO_CROSSCHECK_FULL", "") == "1"

#: Two structurally different subjects keep the tier-1 cross-check cheap;
#: the env-gated sweep covers all ten.
QUICK_SUBJECTS = ("P1", "P3")


def _quick_config():
    return default_config(
        budget_seconds=2400.0,
        max_iterations=60,
        fuzz_execs=200,
        workers=1,
    )


def _observables(subject, mode, executor="thread", workers=1, recorder=None):
    """One full transpile under *mode*, reduced to comparable values.

    Every pass starts from identical global state: the uid counter is
    reset so both passes parse into identical trees (uids appear in
    diagnostics), and the analysis memos are cleared so the incremental
    pass cannot coast on entries from an earlier test.  Passing a
    *recorder* runs the whole pipeline traced — which by contract must
    not change a single observable.
    """
    N._uid_counter = itertools.count(1)
    clear_analysis_caches()
    clock = SimulatedClock.recording()
    config = _quick_config()
    config.search.executor = executor
    config.search.workers = workers
    tracing = (
        scoped_recorder(recorder) if recorder is not None
        else contextlib.nullcontext()
    )
    with forced_mode(mode), tracing:
        result = make_heterogen(config).transpile(
            subject.source,
            kernel_name=subject.kernel,
            solution=subject.solution,
            host_name=subject.host,
            host_args=list(subject.host_args),
            tests=subject.existing_test_list() or None,
            subject_name=subject.id,
            clock=clock,
        )
    best = result.search_result.best
    return {
        "clock_seconds": clock.seconds,
        "clock_by_activity": dict(clock.by_activity),
        "clock_counts": dict(clock.counts),
        "clock_events": list(clock.events or []),
        "history": list(result.search_result.history),
        "fitness": best.fitness if best is not None else None,
        "applied": best.candidate.applied if best is not None else None,
        "final_diff": result.final_diff,
        "final_unit": (
            render(result.final_unit) if result.final_unit is not None else None
        ),
        "success_seconds": result.search_result.success_seconds,
    }


def _assert_identical(subject_id):
    subject = get_subject(subject_id)
    baseline = _observables(subject, "off")
    # "cross" additionally recomputes on every verified cache hit and
    # raises IncrementalMismatch on divergence, so one pass both exercises
    # the incremental path and self-checks its memo contents.
    incremental = _observables(subject, "cross")
    for field in baseline:
        assert incremental[field] == baseline[field], (
            f"{subject_id}: incremental run diverged on {field!r}"
        )


def _assert_process_identical(subject_id):
    """Process-executor cross-check: shipping evaluation to a worker
    pool (delta-wire jobs, canonical-uid payloads, journalled-charge
    replay) must leave every observable bit-identical to the serial run
    — including the uids embedded in history labels, because candidate
    *proposal* stays in the parent.  Checked with the delta wire format
    on (the default) and off (``REPRO_DELTA_WIRE=0`` whole-source jobs):
    the protocol may only change what crosses the wire, never a result."""
    subject = get_subject(subject_id)
    serial = _observables(subject, "on")
    process = _observables(subject, "on", executor="process", workers=2)
    for field in serial:
        assert process[field] == serial[field], (
            f"{subject_id}: process-executor run diverged on {field!r}"
        )
    previous = os.environ.get("REPRO_DELTA_WIRE")
    os.environ["REPRO_DELTA_WIRE"] = "0"
    try:
        full_wire = _observables(subject, "on", executor="process", workers=2)
    finally:
        if previous is None:
            os.environ.pop("REPRO_DELTA_WIRE", None)
        else:
            os.environ["REPRO_DELTA_WIRE"] = previous
    for field in serial:
        assert full_wire[field] == serial[field], (
            f"{subject_id}: delta-off process run diverged on {field!r}"
        )


@pytest.mark.parametrize("subject_id", QUICK_SUBJECTS)
def test_incremental_pipeline_bit_identical_quick(subject_id):
    _assert_identical(subject_id)


@pytest.mark.skipif(not FULL_SWEEP, reason="set REPRO_CROSSCHECK_FULL=1")
@pytest.mark.parametrize(
    "subject_id",
    [s.id for s in all_subjects() if s.id not in QUICK_SUBJECTS],
)
def test_incremental_pipeline_bit_identical_full(subject_id):
    _assert_identical(subject_id)


@pytest.mark.parametrize("subject_id", QUICK_SUBJECTS)
def test_process_executor_bit_identical_quick(subject_id):
    _assert_process_identical(subject_id)


@pytest.mark.skipif(not FULL_SWEEP, reason="set REPRO_CROSSCHECK_FULL=1")
@pytest.mark.parametrize(
    "subject_id",
    [s.id for s in all_subjects() if s.id not in QUICK_SUBJECTS],
)
def test_process_executor_bit_identical_full(subject_id):
    _assert_process_identical(subject_id)


def _assert_tracing_identical(subject_id):
    """The observability contract: a fully-traced run — serial and
    process-parallel — is bit-identical to the untraced serial run on
    every observable, including the simulated-clock charge journal.
    Spans only *read* the clock; wall-clock timestamps never feed back
    into candidate keys or charges."""
    subject = get_subject(subject_id)
    baseline = _observables(subject, "on")
    serial_rec = TraceRecorder()
    serial = _observables(subject, "on", recorder=serial_rec)
    process_rec = TraceRecorder()
    process = _observables(
        subject, "on", executor="process", workers=2, recorder=process_rec
    )
    for field in baseline:
        assert serial[field] == baseline[field], (
            f"{subject_id}: traced serial run diverged on {field!r}"
        )
        assert process[field] == baseline[field], (
            f"{subject_id}: traced process run diverged on {field!r}"
        )
    # The traces themselves must be substantive, not vacuously empty.
    for rec in (serial_rec, process_rec):
        names = {s.name for s in rec.spans()}
        assert SPAN_TRANSPILE in names
        assert "search.evaluate" in names
    worker_spans = [
        s for s in process_rec.spans() if "worker_pid" in s.args
    ]
    assert worker_spans, "process run recorded no re-parented worker spans"


@pytest.mark.parametrize("subject_id", QUICK_SUBJECTS)
def test_tracing_bit_identical_quick(subject_id):
    _assert_tracing_identical(subject_id)


@pytest.mark.skipif(not FULL_SWEEP, reason="set REPRO_CROSSCHECK_FULL=1")
@pytest.mark.parametrize(
    "subject_id",
    [s.id for s in all_subjects() if s.id not in QUICK_SUBJECTS],
)
def test_tracing_bit_identical_full(subject_id):
    _assert_tracing_identical(subject_id)


# ---------------------------------------------------------------------------
# Charges are never memoized
# ---------------------------------------------------------------------------

KERNEL_SRC = """
int scale = 2;

int helper(int x) {
    return x * scale;
}

int kernel(int data[16], int n) {
    int acc = 0;
    for (int i = 0; i < n; i += 1) {
        acc += helper(data[i]);
    }
    return acc;
}
"""


def _charges(fn):
    clock = SimulatedClock.recording()
    fn(clock)
    return (clock.seconds, dict(clock.by_activity), dict(clock.counts),
            list(clock.events))


def test_style_and_compile_charges_identical_on_cache_hit():
    """Cold-cache and warm-cache runs must charge the simulated clock
    identically — memos hold pure computation, never charges."""
    unit = parse(KERNEL_SRC, top_name="kernel")
    config = SolutionConfig(top_name="kernel")
    with forced_mode("on"):
        clear_analysis_caches()
        cold_style = _charges(lambda c: check_style(unit, clock=c))
        warm_style = _charges(lambda c: check_style(unit, clock=c))
        cold_compile = _charges(lambda c: compile_unit(unit, config, clock=c))
        warm_compile = _charges(lambda c: compile_unit(unit, config, clock=c))
    assert warm_style == cold_style
    assert warm_compile == cold_compile
    assert cold_compile[0] > 0  # the compile charge itself was issued live
    with forced_mode("off"):
        off_style = _charges(lambda c: check_style(unit, clock=c))
        off_compile = _charges(lambda c: compile_unit(unit, config, clock=c))
    assert off_style == cold_style
    assert off_compile == cold_compile


def test_compile_reports_identical_across_modes():
    source = KERNEL_SRC.replace("int data[16]", "int *data")  # provoke diags
    config = SolutionConfig(top_name="kernel")
    N._uid_counter = itertools.count(1)
    off_unit = parse(source, top_name="kernel")
    with forced_mode("off"):
        off_report = compile_unit(off_unit, config)
    N._uid_counter = itertools.count(1)
    on_unit = parse(source, top_name="kernel")
    with forced_mode("cross"):
        clear_analysis_caches()
        first = compile_unit(on_unit, config)
        second = compile_unit(on_unit, config)  # warm: every memo hits
    assert [d for d in first.diagnostics] == [d for d in off_report.diagnostics]
    assert [d for d in second.diagnostics] == [d for d in off_report.diagnostics]
    assert first.compile_seconds == off_report.compile_seconds


# ---------------------------------------------------------------------------
# Schedule memo
# ---------------------------------------------------------------------------


def test_estimate_memo_hits_return_fresh_equal_reports():
    config = SolutionConfig(top_name="kernel")
    with forced_mode("on"):
        clear_analysis_caches()
        unit_a = parse(KERNEL_SRC, top_name="kernel")
        first = estimate(unit_a, config)
        # A *separate parse* of the same source hits via the structural
        # fingerprint even though every uid differs.
        unit_b = parse(KERNEL_SRC, top_name="kernel")
        second = estimate(unit_b, config)
        assert second == first
        assert second is not first
        assert second.resources is not first.resources
        # Callers mutate report.resources; the memo must be isolated.
        second.resources.luts += 10**6
        third = estimate(parse(KERNEL_SRC, top_name="kernel"), config)
        assert third == first
    with forced_mode("off"):
        legacy = estimate(parse(KERNEL_SRC, top_name="kernel"), config)
    assert legacy == first


def test_estimate_distinguishes_clock_period():
    with forced_mode("on"):
        clear_analysis_caches()
        fast = estimate(
            parse(KERNEL_SRC, top_name="kernel"),
            SolutionConfig(top_name="kernel", clock_period_ns=3.33),
        )
        slow = estimate(
            parse(KERNEL_SRC, top_name="kernel"),
            SolutionConfig(top_name="kernel", clock_period_ns=10.0),
        )
    assert fast.clock_period_ns != slow.clock_period_ns


# ---------------------------------------------------------------------------
# Candidate cache keys (S2) and the evaluation key contract
# ---------------------------------------------------------------------------


def test_cached_candidate_key_memoizes_per_context():
    unit = parse(KERNEL_SRC, top_name="kernel")
    candidate = Candidate(unit=unit, config=SolutionConfig(top_name="kernel"))
    with forced_mode("on"):
        key = cached_candidate_key(candidate, "ctx-a")
        assert candidate.__dict__["_cache_key"] == ("ctx-a", key)
        assert cached_candidate_key(candidate, "ctx-a") == key
        # A different context must not reuse the stashed key.
        other = cached_candidate_key(candidate, "ctx-b")
        assert other != key
        assert cached_candidate_key(candidate, "ctx-b") == other


def test_candidate_key_modes_agree_on_distinctions():
    """The fingerprint key must distinguish whatever the render key did."""
    config = SolutionConfig(top_name="kernel")
    variant = KERNEL_SRC.replace("x * scale", "x + scale")
    for mode in ("on", "off"):
        with forced_mode(mode):
            base = candidate_key(parse(KERNEL_SRC, top_name="kernel"), config)
            same = candidate_key(parse(KERNEL_SRC, top_name="kernel"), config)
            edited = candidate_key(parse(variant, top_name="kernel"), config)
            retuned = candidate_key(
                parse(KERNEL_SRC, top_name="kernel"),
                SolutionConfig(top_name="kernel", clock_period_ns=7.0),
            )
        assert same == base, mode
        assert edited != base, mode
        assert retuned != base, mode


# ---------------------------------------------------------------------------
# Interpreter closure reuse across clones
# ---------------------------------------------------------------------------

# Closure reuse — like every other fingerprint memo — is gated on
# `unit_incremental_enabled`, so reuse tests need a unit above the
# small-unit threshold.  One extra helper over KERNEL_SRC does it.
REUSE_SRC = KERNEL_SRC.replace(
    "int helper(int x) {",
    "int shift(int x) {\n    return x + scale;\n}\n\nint helper(int x) {",
)


def test_interp_clone_reuses_unchanged_function_closures():
    with forced_mode("on"):
        unit = parse(REUSE_SRC, top_name="kernel")
        parent = compile_program(unit)
        child_unit = copy.deepcopy(unit)
        # Mutate only `kernel` in the clone.
        kernel = child_unit.function("kernel")
        lit = next(n for n in kernel.walk() if isinstance(n, N.IntLit))
        lit.value += 1
        child = compile_program(child_unit)
        assert isinstance(child, CompiledProgram)
        assert child is not parent
        # `helper` is byte-identical: its compiled closure is shared.
        assert child.functions["helper"] is parent.functions["helper"]
        assert child.functions["kernel"] is not parent.functions["kernel"]
        assert child.reused_functions >= 1


def test_interp_clone_reuse_does_not_leak_stale_globals():
    with forced_mode("on"):
        unit = parse(REUSE_SRC, top_name="kernel")
        compile_program(unit)
        child_unit = copy.deepcopy(unit)
        glob = next(
            d for d in child_unit.decls
            if isinstance(d, N.VarDecl) and d.name == "scale"
        )
        glob.init.value = 5  # scale: 2 -> 5
        from repro.interp import run_program

        original = run_program(
            unit, "kernel", [[1, 2, 3, 4] + [0] * 12, 4], backend="compiled"
        )
        changed = run_program(
            child_unit, "kernel", [[1, 2, 3, 4] + [0] * 12, 4], backend="compiled"
        )
        assert original.value == 20
        # A stale reused closure reading the old global env would return
        # 20 here — the global-profile gate must force a recompile.
        assert changed.value == 50


def test_interp_reuse_disabled_when_incremental_off():
    with forced_mode("off"):
        unit = parse(REUSE_SRC, top_name="kernel")
        compile_program(unit)
        child_unit = copy.deepcopy(unit)
        assert child_unit.__dict__.get("_compiled_program") is None
        child = compile_program(child_unit)
        assert child.reused_functions == 0


def test_interp_reuse_bypassed_for_small_units():
    """Below the small-unit threshold the reuse check (fingerprints plus
    a dependency fixpoint) costs more than recompiling, so a clone of a
    small unit carries no lineage marker at all."""
    with forced_mode("on"):
        unit = parse(KERNEL_SRC, top_name="kernel")  # 2 functions: small
        compile_program(unit)
        child_unit = copy.deepcopy(unit)
        assert child_unit.__dict__.get("_compiled_program") is None
        child = compile_program(child_unit)
        assert child.reused_functions == 0


# ---------------------------------------------------------------------------
# Speculative-evaluation hygiene (S1)
# ---------------------------------------------------------------------------


class _FakeFuture:
    def __init__(self):
        self.cancelled = False

    def cancel(self):
        self.cancelled = True
        return True


def test_cache_hit_pops_and_cancels_stale_inflight_future():
    """A speculative run submitted before its cache entry landed must be
    evicted on the hit — a leaked future occupies an inflight slot (and a
    worker) until shutdown."""
    from repro.core import RepairSearch, SearchConfig

    unit = parse(KERNEL_SRC, top_name="kernel")
    search = RepairSearch(
        original=unit,
        kernel_name="kernel",
        tests=[[[1, 2, 3, 4] + [0] * 12, 4]],
        config=SearchConfig(use_cache=True, workers=1),
    )
    candidate = Candidate(unit=unit, config=SolutionConfig(top_name="kernel"))
    search.evaluate(candidate)  # miss: populates the cache
    key = cached_candidate_key(candidate, search._cache_context)
    stale = _FakeFuture()
    search._inflight[key] = stale
    evaluation = search.evaluate(candidate)  # hit
    assert key not in search._inflight
    assert stale.cancelled
    assert evaluation.fitness is not None


# ---------------------------------------------------------------------------
# Mode plumbing
# ---------------------------------------------------------------------------


def test_forced_mode_restores_previous_mode():
    before = incremental_mode()
    with forced_mode("off"):
        assert incremental_mode() == "off"
        with forced_mode("cross"):
            assert incremental_mode() == "cross"
        assert incremental_mode() == "off"
    assert incremental_mode() == before
