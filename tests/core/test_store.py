"""Persistent evaluation store: schema, salting, serialization and the
read-through wiring into the in-memory cache."""

import pickle

import pytest

from repro.cfront.parser import parse
from repro.core.evalcache import (
    CachedEvaluation,
    EvalCache,
    canonicalize_evaluation,
    rebind_evaluation,
)
from repro.core.parallel import EvalJob, evaluate_job
from repro.core.store import (
    SCHEMA_VERSION,
    EvalStore,
    close_stores,
    decode_evaluation,
    encode_evaluation,
    get_store,
    toolchain_salt,
)
from repro.hls import SolutionConfig


def entry(seconds=1.0):
    return CachedEvaluation(
        style_violations=(),
        compile_report=None,
        diff_report=None,
        charges=(("hls_compile", seconds),),
    )


SRC = """
int kernel(int a[8], int n) {
    if (n > 8) { n = 8; }
    long double acc = 0.0;
    for (int i = 0; i < n; i++) {
        long double x = a[i];
        acc = acc + x;
    }
    return (int)acc;
}
"""


def real_evaluation():
    """A toolchain-produced canonical payload.

    The ``long double`` accumulator provokes real compile diagnostics
    (with node uids), so round-trips cover the nested report
    dataclasses; the style checker is off so the pipeline always
    reaches the compiler.
    """
    job = EvalJob(
        source=SRC,
        config=SolutionConfig(top_name="kernel"),
        context_id="ctx",
        original_source=SRC,
        kernel_name="kernel",
        tests=(([1, 2, 3, 4], 4),),
        limits=None,
        max_faults=3,
        use_style_checker=False,
        interp_backend=None,
        incremental="on",
    )
    return evaluate_job(job)


class TestEvalStore:
    def test_persists_across_opens(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        with EvalStore(path) as store:
            store.put("k", entry(2.5))
            assert len(store) == 1
        with EvalStore(path) as store:
            got = store.get("k")
            assert got is not None
            assert got.charges == (("hls_compile", 2.5),)
            assert store.hits == 1 and store.misses == 0

    def test_counters_and_contains(self, tmp_path):
        store = EvalStore(str(tmp_path / "s.sqlite"))
        assert store.get("missing") is None
        assert store.misses == 1
        store.put("k", entry())
        assert store.contains("k") and not store.contains("other")
        assert store.hits == 0  # contains never counts
        assert store.get("k") is not None
        assert store.hit_ratio == pytest.approx(0.5)

    def test_salt_mismatch_purges_everything(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        with EvalStore(path, salt="toolchain-A") as store:
            store.put("k1", entry())
            store.put("k2", entry())
        reopened = EvalStore(path, salt="toolchain-B")
        assert len(reopened) == 0
        assert reopened.invalidations == 2
        assert reopened.get("k1") is None
        # The new salt is now recorded: a third open under it keeps data.
        reopened.put("k3", entry())
        reopened.close()
        with EvalStore(path, salt="toolchain-B") as store:
            assert store.contains("k3")
            assert store.invalidations == 0

    def test_default_salt_tracks_toolchain(self, tmp_path):
        store = EvalStore(str(tmp_path / "s.sqlite"))
        assert store.salt == toolchain_salt()
        assert f"schema-{SCHEMA_VERSION}" in store.salt

    def test_undecodable_payload_dropped_as_miss(self, tmp_path):
        store = EvalStore(str(tmp_path / "s.sqlite"))
        with store._lock, store._conn:
            store._conn.execute(
                "INSERT INTO evaluations (key, payload) VALUES (?, ?)",
                ("bad", b"not a pickle"),
            )
        assert store.get("bad") is None
        assert store.misses == 1 and store.invalidations == 1
        assert not store.contains("bad")  # the row was deleted

    def test_clear_resets_counters(self, tmp_path):
        store = EvalStore(str(tmp_path / "s.sqlite"))
        store.put("k", entry())
        store.get("k")
        store.clear()
        assert len(store) == 0
        assert store.hits == 0 and store.misses == 0


class TestDecodeMemo:
    def test_repeat_gets_decode_once(self, tmp_path):
        """A 100%-hit warm run must not re-unpickle every payload: the
        second get of a key is served from the decode memo."""
        store = EvalStore(str(tmp_path / "s.sqlite"))
        store.put("k", entry(2.5))
        first = store.get("k")
        second = store.get("k")
        assert first == second
        assert store.decode_memo_hits == 1
        assert store.hits == 2
        assert store.stats()["decode_memo_hits"] == 1

    def test_put_does_not_populate_memo(self, tmp_path):
        """Only payloads actually decoded from disk are memoized —
        external corruption after a put must still be observed."""
        store = EvalStore(str(tmp_path / "s.sqlite"))
        store.put("k", entry())
        with store._lock, store._conn:
            store._conn.execute(
                "UPDATE evaluations SET payload = ? WHERE key = ?",
                (b"garbage", "k"),
            )
        assert store.get("k") is None
        assert store.invalidations == 1

    def test_memo_is_bounded(self, tmp_path, monkeypatch):
        from repro.core import store as store_mod

        monkeypatch.setattr(store_mod, "_MAX_DECODED", 2)
        store = EvalStore(str(tmp_path / "s.sqlite"))
        for index in range(4):
            store.put(f"k{index}", entry())
            assert store.get(f"k{index}") is not None
        assert len(store._decoded) <= 2

    def test_clear_drops_memo(self, tmp_path):
        store = EvalStore(str(tmp_path / "s.sqlite"))
        store.put("k", entry())
        store.get("k")
        store.clear()
        assert store.get("k") is None
        assert store.decode_memo_hits == 0

    def test_contains_many_batches_across_tiers(self, tmp_path):
        store = EvalStore(str(tmp_path / "s.sqlite"))
        store.put("disk-only", entry())
        store.put("memoized", entry())
        store.get("memoized")  # now in the decode memo
        present = store.contains_many(
            ["disk-only", "memoized", "absent", "also-absent"]
        )
        assert present == {"disk-only", "memoized"}
        assert store.contains_many([]) == set()

    def test_contains_many_chunks_large_key_sets(self, tmp_path):
        """More keys than one SQLite IN(...) statement's parameter chunk
        (500) still resolve correctly."""
        store = EvalStore(str(tmp_path / "s.sqlite"))
        keys = [f"k{index}" for index in range(1203)]
        for key in keys[::3]:
            store.put(key, entry())
        present = store.contains_many(keys)
        assert present == set(keys[::3])


class TestRegistry:
    def test_get_store_shares_one_connection_per_path(self, tmp_path):
        try:
            path = str(tmp_path / "shared.sqlite")
            first = get_store(path)
            second = get_store(path)
            assert first is second
            other = get_store(str(tmp_path / "other.sqlite"))
            assert other is not first
        finally:
            close_stores()

    def test_close_stores_empties_registry(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        store = get_store(path)
        close_stores()
        assert get_store(path) is not store
        close_stores()


class TestSerialization:
    def test_roundtrip_of_real_payload(self):
        evaluation = real_evaluation()
        # The source above provokes real reports (pointer-style kernels
        # carry diagnostics), so the round-trip covers nested dataclasses.
        assert evaluation.compile_report is not None
        decoded = decode_evaluation(encode_evaluation(evaluation))
        assert decoded == evaluation

    def test_roundtrip_through_store(self, tmp_path):
        evaluation = real_evaluation()
        with EvalStore(str(tmp_path / "s.sqlite")) as store:
            store.put("k", evaluation)
            assert store.get("k") == evaluation

    def test_decode_rejects_foreign_schema(self):
        blob = pickle.dumps((SCHEMA_VERSION + 1, entry()), protocol=4)
        with pytest.raises(ValueError):
            decode_evaluation(blob)


class TestCanonicalUidSpace:
    def test_rebind_lands_on_structural_twin(self):
        """A payload canonicalized against one parse rebinds onto a
        *different* parse of the same source (disjoint uids) such that
        every diagnostic names the structurally-equivalent node."""
        unit_a = parse(SRC, top_name="kernel")
        unit_b = parse(SRC, top_name="kernel")
        raw = real_evaluation()  # canonical space already
        assert any(d.node_uid != 0 for d in raw.compile_report.diagnostics)
        bound_a = rebind_evaluation(raw, unit_a)
        bound_b = rebind_evaluation(raw, unit_b)
        uids_a = [n.uid for n in unit_a.walk()]
        uids_b = [n.uid for n in unit_b.walk()]
        assert set(uids_a).isdisjoint(uids_b)
        for diag_a, diag_b in zip(
            bound_a.compile_report.diagnostics,
            bound_b.compile_report.diagnostics,
        ):
            if diag_a.node_uid == 0:
                assert diag_b.node_uid == 0
                continue
            assert uids_a.index(diag_a.node_uid) == uids_b.index(diag_b.node_uid)

    def test_canonicalize_then_rebind_is_identity(self):
        unit = parse(SRC, top_name="kernel")
        job_result = real_evaluation()
        bound = rebind_evaluation(job_result, unit)
        assert rebind_evaluation(canonicalize_evaluation(bound, unit), unit) == bound

    def test_zero_uid_stays_zero(self):
        unit = parse(SRC, top_name="kernel")
        payload = entry()
        assert canonicalize_evaluation(payload, unit) is payload
        assert rebind_evaluation(payload, unit) is payload


class TestCacheStoreTier:
    def test_read_through_promotes_into_memory(self, tmp_path):
        store = EvalStore(str(tmp_path / "s.sqlite"))
        store.put("k", entry(3.0))
        cache = EvalCache(store=store)
        got, tier = cache.lookup("k")
        assert tier == "store" and got is not None
        assert cache.misses == 1  # the memory tier genuinely missed
        assert store.hits == 1
        # Second lookup answers from memory without touching the store.
        got2, tier2 = cache.lookup("k")
        assert tier2 == "memory" and got2 is got
        assert store.lookups == 1

    def test_put_writes_through(self, tmp_path):
        store = EvalStore(str(tmp_path / "s.sqlite"))
        cache = EvalCache(store=store)
        cache.put("k", entry())
        assert store.contains("k")
        assert cache.contains("k")

    def test_contains_consults_both_tiers(self, tmp_path):
        store = EvalStore(str(tmp_path / "s.sqlite"))
        store.put("durable", entry())
        cache = EvalCache(store=store)
        assert cache.contains("durable")
        assert not cache.contains("nowhere")
        assert cache.hits == 0 and cache.misses == 0


class TestConcurrentAccess:
    """The get() lock must span the whole fetch–decode–drop sequence:
    an unreadable-payload DELETE racing a fresh put() used to discard
    the new payload silently."""

    def _corrupt(self, store, key):
        with store._lock, store._conn:
            store._conn.execute(
                "INSERT OR REPLACE INTO evaluations (key, payload)"
                " VALUES (?, ?)",
                (key, b"not a pickle"),
            )

    def test_unreadable_payload_dropped_and_counted_once(self, tmp_path):
        with EvalStore(str(tmp_path / "s.sqlite")) as store:
            store.put("k", entry())
            self._corrupt(store, "k")
            assert store.get("k") is None
            assert store.invalidations == 1
            assert store.misses == 1 and store.hits == 0
            assert not store.contains("k")

    def test_concurrent_get_put_keeps_fresh_payloads(self, tmp_path):
        import threading

        store = EvalStore(str(tmp_path / "s.sqlite"))
        fresh = entry(2.0)
        stop = threading.Event()
        failures = []
        gets = [0]

        def reader():
            try:
                while not stop.is_set():
                    got = store.get("k")
                    gets[0] += 1
                    # Every successful read decodes to the real payload;
                    # garbage never leaks out as an entry.
                    assert got is None or got.charges == fresh.charges
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(exc)

        def writer():
            try:
                while not stop.is_set():
                    self._corrupt(store, "k")
                    store.put("k", fresh)
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        threads.append(threading.Thread(target=writer))
        for t in threads:
            t.start()
        import time

        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join()
        store.close()
        assert not failures
        # Lookup accounting stayed consistent under contention.
        assert store.hits + store.misses == gets[0]

    def test_put_after_stale_read_survives(self, tmp_path):
        """Serialized form of the race: corrupt, read (drops the row),
        then put — the fresh entry must be durable."""
        with EvalStore(str(tmp_path / "s.sqlite")) as store:
            self._corrupt(store, "k")
            assert store.get("k") is None
            store.put("k", entry(3.0))
            got = store.get("k")
            assert got is not None and got.charges == (("hls_compile", 3.0),)


class TestCounterexampleWireFormat:
    """Difftest counterexamples are repair-synthesis evidence; they must
    survive the full cache wire format — canonicalize, pickle to the
    store, decode, rebind against a re-parsed unit."""

    def _evaluation(self):
        from repro.difftest import Counterexample, DiffReport

        report = DiffReport(
            total=3,
            matching=1,
            mismatching_tests=[1, 2],
            counterexamples=[
                Counterexample(
                    test_index=1, args=[[1, 2, 3, 4], 4],
                    expected=7, actual=9,
                ),
                Counterexample(
                    test_index=2, args=[[9, 9, 9, 9], 4],
                    expected=1, actual=None, fault="stack overflow",
                ),
            ],
        )
        return CachedEvaluation(
            style_violations=(),
            compile_report=None,
            diff_report=report,
            charges=(("difftest", 1.5),),
        )

    def test_round_trip_through_canonical_space_and_pickle(self):
        from repro.cfront.printer import render

        unit = parse(SRC, top_name="kernel")
        evaluation = self._evaluation()
        canonical = canonicalize_evaluation(evaluation, unit)
        decoded = decode_evaluation(encode_evaluation(canonical))
        rebound = rebind_evaluation(decoded, parse(render(unit), top_name="kernel"))
        assert rebound.diff_report.counterexamples \
            == evaluation.diff_report.counterexamples
        assert rebound.diff_report.mismatching_tests == [1, 2]

    def test_round_trip_through_store(self, tmp_path):
        unit = parse(SRC, top_name="kernel")
        evaluation = canonicalize_evaluation(self._evaluation(), unit)
        with EvalStore(str(tmp_path / "s.sqlite")) as store:
            store.put("k", evaluation)
            got = store.get("k")
        assert got is not None
        ces = got.diff_report.counterexamples
        assert [c.test_index for c in ces] == [1, 2]
        assert ces[0].args == [[1, 2, 3, 4], 4]
        assert ces[0].actual == 9
        assert ces[1].actual is None and ces[1].fault == "stack overflow"
