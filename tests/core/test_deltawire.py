"""The delta wire format (:mod:`repro.core.parallel`).

Covers the splice/round-trip property the protocol rests on, the
parent-side planning rules, the worker-resident caches (context LRU,
parsed-unit LRU), the :class:`DeltaMiss` → full-source fallback, and
the wire-size win itself — all in-process: ``evaluate_job`` runs the
worker code path in this interpreter, sharing the module globals the
way a fork child would.
"""

from __future__ import annotations

import dataclasses
import itertools
import pickle
from concurrent.futures import Future

import pytest

from repro.cfront import graft
from repro.cfront import nodes as N
from repro.cfront.fingerprint import exact_fp, structural_fp
from repro.cfront.parser import parse
from repro.cfront.printer import render, render_decl, render_unit_from_blocks
from repro.core import RepairSearch, SearchConfig, parallel
from repro.core.edits import Candidate
from repro.core.evalcache import CachedEvaluation
from repro.core.parallel import (
    DeltaJob,
    DeltaMiss,
    EvalJob,
    delta_wire_enabled,
    evaluate_job,
    note_delta_miss,
    plan_decl_entries,
    register_baseline,
)
from repro.hls import SimulatedClock, SolutionConfig
from repro.subjects import all_subjects

from tests.core.test_evalcache import (
    BROKEN_SRC,
    TESTS,
    assert_equivalent,
    run_search,
)

#: Two-decl baseline and a candidate that edits only the kernel: the
#: helper decl is shared, so a delta plan elides it and ships the dirty
#: kernel block alone.
TWO_DECL_BASE = """
int helper(int x) {
    return x + 1;
}

int kernel(int a[8], int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
        acc = acc + helper(a[i]);
    }
    return acc;
}
"""

TWO_DECL_VARIANT = TWO_DECL_BASE.replace(
    "return acc;", "acc = acc + 0;\n    return acc;"
)


@pytest.fixture()
def clean_wire_state():
    """Snapshot and restore the module-level delta/worker state so these
    tests neither see nor leak planner claims and worker caches."""
    saved = (
        dict(parallel._DECL_BLOCKS),
        {k: set(v) for k, v in parallel._BASELINE_FPS.items()},
        set(parallel._SEEDED_AT_FORK),
        dict(parallel._SHIPPED_COUNTS),
        dict(parallel._CONTEXT_PAYLOADS),
        dict(parallel._CONTEXT_TEMPLATES),
        dict(parallel._WORKER_CONTEXTS),
        dict(parallel._CONTEXT_STATS),
        dict(parallel._PARSED_UNITS),
        dict(parallel._UNIT_CACHE_STATS),
    )
    saved_templates = (
        dict(graft._TEMPLATES),
        dict(graft._TEMPLATE_STATS),
        dict(graft._HOLE_FAMILIES),
    )
    graft.clear_decl_templates()
    parallel._DECL_BLOCKS.clear()
    parallel._BASELINE_FPS.clear()
    parallel._SEEDED_AT_FORK.clear()
    parallel._SHIPPED_COUNTS.clear()
    parallel._CONTEXT_PAYLOADS.clear()
    parallel._CONTEXT_TEMPLATES.clear()
    parallel._WORKER_CONTEXTS.clear()
    parallel._PARSED_UNITS.clear()
    for stats in (parallel._CONTEXT_STATS, parallel._UNIT_CACHE_STATS):
        for key in stats:
            stats[key] = 0
    yield
    (blocks, baselines, seeded, shipped, payloads, templates,
     contexts, cstats, units, ustats) = saved
    parallel._DECL_BLOCKS.clear()
    parallel._DECL_BLOCKS.update(blocks)
    parallel._BASELINE_FPS.clear()
    parallel._BASELINE_FPS.update(baselines)
    parallel._SEEDED_AT_FORK.clear()
    parallel._SEEDED_AT_FORK.update(seeded)
    parallel._SHIPPED_COUNTS.clear()
    parallel._SHIPPED_COUNTS.update(shipped)
    parallel._CONTEXT_PAYLOADS.clear()
    parallel._CONTEXT_PAYLOADS.update(payloads)
    parallel._CONTEXT_TEMPLATES.clear()
    parallel._CONTEXT_TEMPLATES.update(templates)
    parallel._WORKER_CONTEXTS.clear()
    parallel._WORKER_CONTEXTS.update(contexts)
    parallel._CONTEXT_STATS.update(cstats)
    parallel._PARSED_UNITS.clear()
    parallel._PARSED_UNITS.update(units)
    parallel._UNIT_CACHE_STATS.update(ustats)
    graft._TEMPLATES.clear()
    graft._TEMPLATES.update(saved_templates[0])
    graft._TEMPLATE_STATS.update(saved_templates[1])
    graft._HOLE_FAMILIES.clear()
    graft._HOLE_FAMILIES.update(saved_templates[2])


def _make_search(**overrides):
    unit = parse(BROKEN_SRC, top_name="kernel")
    overrides.setdefault("max_iterations", 4)
    overrides.setdefault("use_synthesis", False)
    search = RepairSearch(
        original=unit,
        kernel_name="kernel",
        tests=TESTS,
        config=SearchConfig(**overrides),
        clock=SimulatedClock(),
    )
    initial = Candidate(unit=unit, config=SolutionConfig(top_name="kernel"))
    return search, initial


class TestRenderBlocks:
    """The byte-identity :func:`render_unit_from_blocks` is built on."""

    def test_blocks_reassemble_every_subject(self):
        for subject in all_subjects():
            unit = subject.parse()
            blocks = [render_decl(decl) for decl in unit.decls]
            assert render_unit_from_blocks(blocks) == render(unit), (
                f"{subject.id}: per-decl blocks do not reassemble to "
                "render(unit)"
            )

    def test_blocks_reassemble_broken_and_variant(self):
        for src in (BROKEN_SRC, TWO_DECL_BASE, TWO_DECL_VARIANT):
            unit = parse(src, top_name="kernel")
            blocks = [render_decl(decl) for decl in unit.decls]
            assert render_unit_from_blocks(blocks) == render(unit)


class TestSpliceRoundTrip:
    """splice(baseline, dirty decls) re-parses bit-identically to the
    full-source path — the determinism keystone of the protocol."""

    def _reparse_fps(self, source, kernel="kernel"):
        N._uid_counter = itertools.count(1)
        unit = parse(source, top_name=kernel)
        return [exact_fp(unit, d) for d in unit.decls], render(unit)

    def test_spliced_source_matches_full_render(self, clean_wire_state):
        baseline = parse(TWO_DECL_BASE, top_name="kernel")
        candidate = parse(TWO_DECL_VARIANT, top_name="kernel")
        register_baseline(
            "ctx", baseline, tests=TESTS, original_source=render(baseline)
        )
        entries = plan_decl_entries(candidate, "ctx", pool_width=2)
        # The baseline-shared decls are elided, the dirty one ships.
        packed, dirty = entries
        assert 0 < len(dirty) < len(packed) // parallel._WIRE_FP_BYTES
        job = EvalJob(
            source="",
            config=SolutionConfig(top_name="kernel"),
            context_id="ctx",
            original_source=render(baseline),
            kernel_name="kernel",
            tests=TESTS,
            limits=None,
            max_faults=3,
            use_style_checker=False,
            interp_backend=None,
            incremental="on",
            decls=entries,
        )
        spliced, missing = parallel._splice_source(job)
        assert missing == ()
        assert spliced == render(candidate)
        # Round trip: the spliced text re-parses to a unit whose exact
        # fingerprints match a re-parse of the full-source render.
        delta_fps, delta_render = self._reparse_fps(spliced)
        full_fps, full_render = self._reparse_fps(render(candidate))
        assert delta_fps == full_fps
        assert delta_render == full_render

    def test_round_trip_same_digest_decls(self, clean_wire_state):
        """Two decls with identical rendered text share one structural
        fingerprint; the wire must preserve their count and order."""
        unit = parse(BROKEN_SRC, top_name="kernel")
        twin_fps = [parallel.wire_fp(unit, d) for d in unit.decls]
        # Simulate the shadowing case directly at the wire layer: the
        # same fingerprint referenced twice resolves to two copies of
        # the block, in entry order.
        register_baseline("ctx", unit)
        fp = twin_fps[0]
        block = render_decl(unit.decls[0])
        entries = (fp + fp, ())
        job = EvalJob(
            source="",
            config=SolutionConfig(top_name="kernel"),
            context_id="ctx",
            original_source=render(unit),
            kernel_name="kernel",
            tests=TESTS,
            limits=None,
            max_faults=3,
            use_style_checker=False,
            interp_backend=None,
            incremental="on",
            decls=entries,
        )
        spliced, missing = parallel._splice_source(job)
        assert missing == ()
        assert spliced == render_unit_from_blocks([block, block])

    def test_subject_round_trip_via_planner(self, clean_wire_state):
        """Every subject's baseline survives plan → splice → re-parse
        with exact fingerprints intact (all decls elided: the worker
        derives every block from the context payload)."""
        for subject in all_subjects():
            unit = subject.parse()
            context = f"ctx:{subject.id}"
            register_baseline(context, unit)
            packed, dirty = plan_decl_entries(unit, context, pool_width=2)
            assert dirty == ()
            width = parallel._WIRE_FP_BYTES
            fps = [
                packed[i * width : (i + 1) * width]
                for i in range(len(packed) // width)
            ]
            blocks = [parallel._block_for(fp) for fp in fps]
            assert None not in blocks
            assert render_unit_from_blocks(blocks) == render(unit), subject.id


class TestPlanner:
    def test_dirty_blocks_always_ship_baseline_never_does(
        self, clean_wire_state
    ):
        """Elision is provable knowledge only: the dirty decl ships on
        every job (the pool queue never reveals which worker got a
        previous send), while baseline decls never ship."""
        baseline = parse(TWO_DECL_BASE, top_name="kernel")
        candidate = parse(TWO_DECL_VARIANT, top_name="kernel")
        register_baseline("ctx", baseline)
        for _ in range(3):
            _packed, dirty = plan_decl_entries(candidate, "ctx", pool_width=2)
            assert len(dirty) == 1

    def test_fork_seeded_blocks_elide(self, clean_wire_state):
        baseline = parse(TWO_DECL_BASE, top_name="kernel")
        candidate = parse(TWO_DECL_VARIANT, top_name="kernel")
        register_baseline("ctx", baseline)
        plan_decl_entries(candidate, "ctx", pool_width=2)
        # Simulate a pool fork: everything cached so far is inherited.
        parallel._SEEDED_AT_FORK.update(parallel._DECL_BLOCKS)
        _packed, dirty = plan_decl_entries(candidate, "ctx", pool_width=2)
        assert dirty == ()

    def test_note_delta_miss_forgets_claims(self, clean_wire_state):
        baseline = parse(BROKEN_SRC, top_name="kernel")
        register_baseline("ctx", baseline)
        packed, dirty = plan_decl_entries(baseline, "ctx", pool_width=1)
        assert dirty == ()
        width = parallel._WIRE_FP_BYTES
        note_delta_miss(
            [
                packed[i * width : (i + 1) * width]
                for i in range(len(packed) // width)
            ]
        )
        resent_packed, resent_dirty = plan_decl_entries(
            baseline, "ctx", pool_width=1
        )
        assert len(resent_dirty) == len(resent_packed) // width


class TestWorkerEvaluation:
    """evaluate_job run in-process: the worker path with shared globals."""

    def test_delta_job_equals_full_job(self, clean_wire_state):
        search, initial = _make_search(executor="thread")
        delta_job = search._make_job(initial)
        full_job = search._make_job(initial, full_source=True)
        assert isinstance(delta_job, DeltaJob)
        assert delta_job.d is not None
        assert isinstance(full_job, EvalJob)
        assert full_job.decls is None
        assert full_job.tests == TESTS or full_job.tests == tuple(
            tuple(t) for t in TESTS
        )
        delta_result = evaluate_job(delta_job)
        parallel._PARSED_UNITS.clear()  # force the full job to re-parse
        full_result = evaluate_job(full_job)
        assert isinstance(delta_result, CachedEvaluation)
        assert delta_result.wire is not None and delta_result.wire.delta
        assert full_result.wire is not None and not full_result.wire.delta
        assert dataclasses.replace(
            delta_result, wire=None
        ) == dataclasses.replace(full_result, wire=None)

    def test_unknown_block_reference_returns_delta_miss(
        self, clean_wire_state
    ):
        search, initial = _make_search(executor="thread")
        job = search._make_job(initial)
        ghost = b"\x00" * parallel._WIRE_FP_BYTES
        packed, dirty = job.d
        bogus = dataclasses.replace(
            job,
            d=(
                ghost + packed,
                tuple((index + 1, blob) for index, blob in dirty),
            ),
        )
        result = evaluate_job(bogus)
        assert isinstance(result, DeltaMiss)
        assert result.missing == (ghost,)

    def test_unresolvable_context_payload_returns_delta_miss(
        self, clean_wire_state
    ):
        """A spawn-start worker holds no context registries: delta jobs
        answer DeltaMiss instead of evaluating against empty tests."""
        search, initial = _make_search(executor="thread")
        job = search._make_job(initial)
        parallel._CONTEXT_PAYLOADS.clear()
        parallel._CONTEXT_TEMPLATES.clear()
        parallel._WORKER_CONTEXTS.clear()
        result = evaluate_job(job)
        assert isinstance(result, DeltaMiss)
        assert result.missing == (f"context:{job.c}",)

    def test_parsed_unit_cache_hits_on_repeat(self, clean_wire_state):
        search, initial = _make_search(executor="thread")
        job = search._make_job(initial)
        first = evaluate_job(job)
        second = evaluate_job(job)
        assert not first.wire.unit_cache_hit
        assert second.wire.unit_cache_hit
        assert second.wire.parse_seconds == 0.0
        assert dataclasses.replace(first, wire=None) == dataclasses.replace(
            second, wire=None
        )
        stats = parallel.unit_cache_stats()
        assert stats["hits"] >= 1 and stats["misses"] >= 1

    def test_unit_cache_bypassed_when_incremental_off(
        self, clean_wire_state
    ):
        search, initial = _make_search(executor="thread")
        job = search._make_job(initial, full_source=True)
        job = dataclasses.replace(job, incremental="off")
        first = evaluate_job(job)
        second = evaluate_job(job)
        assert not first.wire.unit_cache_hit
        assert not second.wire.unit_cache_hit


class TestParseCacheKeying:
    """Regression tests for the parsed-unit LRU key (the 0.006 hit rate
    in the BENCH_parallel wire sweep).

    The first cut keyed delta jobs by packed decl-fingerprint bytes and
    full jobs by a source digest, both scoped by the wire context token
    — so the only repeats that structurally occur (DeltaMiss resends
    and later searches over the same subject) addressed identical
    content under different keys and always re-parsed.  The key is now
    ``(kernel, sha256(source))``: pure content addressing, shared by
    both wire formats and across contexts."""

    def test_full_resend_hits_delta_parse(self, clean_wire_state):
        """The DeltaMiss-resend shape: a full-source resubmit of a
        candidate whose content a delta job already carried must reuse
        the parse, not repeat it."""
        search, initial = _make_search(executor="thread")
        first = evaluate_job(search._make_job(initial))
        second = evaluate_job(search._make_job(initial, full_source=True))
        assert not first.wire.unit_cache_hit
        assert second.wire.unit_cache_hit
        assert second.wire.parse_seconds == 0.0
        assert dataclasses.replace(first, wire=None) == dataclasses.replace(
            second, wire=None
        )

    def test_parse_cache_survives_context_turnover(self, clean_wire_state):
        """A fresh search over the same subject (new context token —
        here via different exec limits) re-submits identical candidate
        content; the worker must not re-parse it."""
        from repro.interp import ExecLimits

        search_a, initial_a = _make_search(executor="thread")
        unit_b = parse(BROKEN_SRC, top_name="kernel")
        search_b = RepairSearch(
            original=unit_b,
            kernel_name="kernel",
            tests=TESTS,
            config=SearchConfig(executor="thread", max_iterations=4,
                                use_synthesis=False),
            clock=SimulatedClock(),
            limits=ExecLimits(max_steps=123_456),
        )
        initial_b = Candidate(
            unit=unit_b, config=initial_a.config
        )
        assert search_a._wire_context != search_b._wire_context
        first = evaluate_job(search_a._make_job(initial_a))
        second = evaluate_job(search_b._make_job(initial_b))
        assert not first.wire.unit_cache_hit
        assert second.wire.unit_cache_hit

    def test_delta_sweep_rerun_hit_rate(self, clean_wire_state):
        """A rerun of a delta-wire job stream (the shape of a warm
        sweep: same subject, fresh search generation) must hit the
        parse cache for every repeated content — a realistic hit rate,
        not the ~0 the mismatched keys produced."""
        search, initial = _make_search(executor="thread")
        jobs = [
            search._make_job(initial),
            search._make_job(initial, full_source=True),
        ]
        for job in jobs:
            evaluate_job(job)
        results = [evaluate_job(job) for job in jobs]
        hits = sum(1 for result in results if result.wire.unit_cache_hit)
        assert hits / len(results) == 1.0


class TestGraftWorkerPath:
    """The decl-grain graft tier inside ``evaluate_job`` (PR 9)."""

    def test_delta_job_grafts_and_matches_graft_off(
        self, clean_wire_state, monkeypatch
    ):
        monkeypatch.setenv(graft.GRAFT_ENV, "1")
        search, initial = _make_search(executor="thread")
        job = search._make_job(initial)
        assert job.a == "on"
        grafted = evaluate_job(job)
        assert grafted.wire.grafted
        # Context construction pre-warms the baseline's decl templates,
        # so the initial candidate (== baseline) grafts entirely from
        # cache without a single mini-parse.
        assert grafted.wire.decl_cache_hits > 0
        assert grafted.wire.decl_cache_misses == 0
        parallel._PARSED_UNITS.clear()
        graft.clear_decl_templates()
        plain = evaluate_job(dataclasses.replace(job, a="off"))
        assert not plain.wire.grafted
        assert plain.wire.decl_cache_hits == 0
        assert plain.wire.decl_cache_misses == 0
        assert dataclasses.replace(grafted, wire=None) == dataclasses.replace(
            plain, wire=None
        )

    def test_repeat_graft_hits_decl_templates(
        self, clean_wire_state, monkeypatch
    ):
        """A unit-LRU miss whose blocks are all cached grafts with zero
        mini-parses — the decl tier serving what the unit tier cannot."""
        monkeypatch.setenv(graft.GRAFT_ENV, "1")
        search, initial = _make_search(executor="thread")
        job = search._make_job(initial)
        first = evaluate_job(job)
        # Warmed at context build: the first graft already rides the
        # decl tier rather than mini-parsing.
        assert first.wire.decl_cache_hits > 0
        assert graft.decl_cache_stats()["warmed"] > 0
        # Evict the whole-unit entry but keep decl templates: the repeat
        # must reconstruct without parsing a single block.
        parallel._PARSED_UNITS.clear()
        second = evaluate_job(job)
        assert second.wire.grafted
        assert not second.wire.unit_cache_hit
        assert second.wire.decl_cache_misses == 0
        assert second.wire.decl_cache_hits > 0
        assert second.wire.parse_seconds == 0.0
        assert dataclasses.replace(first, wire=None) == dataclasses.replace(
            second, wire=None
        )

    def test_cross_mode_verifies_every_graft(self, clean_wire_state):
        search, initial = _make_search(executor="thread")
        job = search._make_job(initial)
        assert_equivalent_jobs = evaluate_job(
            dataclasses.replace(job, a="cross")
        )
        assert assert_equivalent_jobs.wire.grafted
        parallel._PARSED_UNITS.clear()
        graft.clear_decl_templates()
        baseline = evaluate_job(dataclasses.replace(job, a="off"))
        assert dataclasses.replace(
            assert_equivalent_jobs, wire=None
        ) == dataclasses.replace(baseline, wire=None)

    def test_graft_mode_rides_the_wire(self, clean_wire_state, monkeypatch):
        """The producer stamps its graft mode onto the envelope, so the
        worker mirrors the parent even if its own environment differs."""
        search, initial = _make_search(executor="thread")
        monkeypatch.setenv(graft.GRAFT_ENV, "0")
        job_off = search._make_job(initial)
        assert job_off.a == "off"
        monkeypatch.setenv(graft.GRAFT_ENV, "cross")
        job_cross = search._make_job(initial)
        assert job_cross.a == "cross"
        monkeypatch.delenv(graft.GRAFT_ENV)
        result = evaluate_job(job_off)
        assert not result.wire.grafted

    def test_incremental_off_disables_grafting(self, clean_wire_state):
        search, initial = _make_search(executor="thread")
        job = search._make_job(initial, full_source=True)
        job = dataclasses.replace(job, incremental="off")
        result = evaluate_job(job)
        assert not result.wire.grafted

    def test_cache_tier_metrics_reach_the_registry(
        self, clean_wire_state, monkeypatch
    ):
        """Satellite regression: ``worker.unit_cache`` and
        ``worker.decl_cache`` hit/miss counters land in the metrics
        registry when the parent folds worker wire stats."""
        from repro.obs import TraceRecorder, scoped_recorder
        from repro.core.parallel import record_worker_wire
        from repro.core.evalcache import WireStats

        monkeypatch.setenv(graft.GRAFT_ENV, "1")
        search, initial = _make_search(executor="thread")
        job = search._make_job(initial)
        first = evaluate_job(job)
        second = evaluate_job(job)  # unit-LRU hit
        recorder = TraceRecorder()
        with scoped_recorder(recorder):
            record_worker_wire(first.wire)
            record_worker_wire(second.wire)
        unit = recorder.metrics.counters_named("worker.unit_cache")
        decl = recorder.metrics.counters_named("worker.decl_cache")
        assert unit[(("outcome", "hit"),)] == 1
        assert unit[(("outcome", "miss"),)] == 1
        assert first.wire.decl_cache_hits > 0
        assert decl[(("outcome", "hit"),)] == first.wire.decl_cache_hits
        totals = parallel.wire_totals()
        assert totals["grafted_jobs"] >= 1
        assert totals["decl_cache_hits"] >= 1
        assert totals["unit_cache_hits"] >= 1


class TestContextLRU:
    TINY = "int kernel(int x) {\n  return x;\n}\n"

    def _job(self, context_id):
        return EvalJob(
            source=self.TINY,
            config=SolutionConfig(top_name="kernel"),
            context_id=context_id,
            original_source=self.TINY,
            kernel_name="kernel",
            tests=((0,), (1,)),
            limits=None,
            max_faults=3,
            use_style_checker=False,
            interp_backend=None,
            incremental="on",
        )

    def test_true_lru_eviction_order(self, clean_wire_state):
        cap = parallel._MAX_WORKER_CONTEXTS
        for index in range(cap):
            parallel._worker_context(self._job(f"c{index}"))
        before = parallel.context_cache_stats()
        # Touch the oldest-inserted context: FIFO would still evict it,
        # true LRU protects it.
        parallel._worker_context(self._job("c0"))
        parallel._worker_context(self._job(f"c{cap}"))
        after = parallel.context_cache_stats()
        assert after["hits"] == before["hits"] + 1
        assert after["evictions"] == before["evictions"] + 1
        assert "c0" in parallel._WORKER_CONTEXTS
        assert "c1" not in parallel._WORKER_CONTEXTS
        assert f"c{cap}" in parallel._WORKER_CONTEXTS


class TestWireBytes:
    def test_delta_job_is_much_smaller_on_the_wire(self, clean_wire_state):
        """The point of the protocol: per-job pickle bytes drop by the
        elided candidate source, original source and diff tests.  A
        real subject (not a toy snippet) must clear the 5x target the
        benchmark enforces on the sweep."""
        from repro.subjects import get_subject

        subject = get_subject("P6")
        unit = subject.parse()
        search = RepairSearch(
            original=unit,
            kernel_name=subject.solution.top_name,
            tests=subject.existing_test_list(),
            config=SearchConfig(max_iterations=2, use_synthesis=False),
            clock=SimulatedClock(),
        )
        initial = Candidate(unit=unit, config=subject.solution)
        delta_job = search._make_job(initial)
        full_job = search._make_job(initial, full_source=True)
        delta_bytes = len(pickle.dumps(delta_job, protocol=4))
        full_bytes = len(pickle.dumps(full_job, protocol=4))
        assert delta_bytes * 5 < full_bytes

    def test_wire_accounting_counters(self, clean_wire_state):
        search, initial = _make_search(executor="thread")
        parallel.reset_wire_totals()
        parallel.set_wire_accounting(True)
        try:
            parallel._account_job(search._make_job(initial))
            parallel._account_job(
                search._make_job(initial, full_source=True)
            )
        finally:
            parallel.set_wire_accounting(False)
        totals = parallel.wire_totals()
        assert totals["jobs"] == 2
        assert totals["delta_jobs"] == 1
        assert totals["full_jobs"] == 1
        assert totals["measured_jobs"] == 2
        assert totals["wire_bytes"] > 0
        parallel.reset_wire_totals()

    def test_accounting_includes_graft_metadata(
        self, clean_wire_state, monkeypatch
    ):
        """``mean_wire_bytes_per_job`` must charge the graft-mode field
        the envelope now carries: the accounted bytes are the bytes of
        the *whole* pickled job, and a mode string that widens the
        pickle widens the measurement."""
        search, initial = _make_search(executor="thread")
        job = search._make_job(initial)
        assert dataclasses.asdict(job)["a"] == job.a  # field is on the wire
        parallel.reset_wire_totals()
        parallel.set_wire_accounting(True)
        try:
            parallel._account_job(job)
        finally:
            parallel.set_wire_accounting(False)
        totals = parallel.wire_totals()
        assert totals["wire_bytes"] == len(pickle.dumps(job, protocol=4))
        monkeypatch.setenv(graft.GRAFT_ENV, "cross")
        wide = dataclasses.replace(job, a="cross")
        assert len(pickle.dumps(wide, protocol=4)) >= totals["wire_bytes"]
        parallel.reset_wire_totals()


class TestSearchFallback:
    def test_delta_miss_triggers_full_source_resubmit(
        self, clean_wire_state, monkeypatch
    ):
        """The search must transparently re-send a candidate whose delta
        job a worker could not splice."""
        from repro.core import search as search_mod

        search, initial = _make_search(executor="process", workers=2)
        calls = []

        def fake_submit(job, workers):
            calls.append(job)
            future = Future()
            if len(calls) == 1:
                assert isinstance(job, DeltaJob)
                future.set_result(DeltaMiss(("lost-fingerprint",)))
            else:
                assert isinstance(job, EvalJob)
                assert job.decls is None
                assert job.source == render(initial.unit)
                assert job.tests is not None
                future.set_result(search._run_toolchain(initial))
            return future

        monkeypatch.setattr(search_mod, "submit_job", fake_submit)
        evaluation = search.evaluate(initial)
        assert len(calls) == 2
        assert evaluation is not None
        assert not isinstance(evaluation, DeltaMiss)


class TestDeltaOffEquivalence:
    def test_process_run_identical_with_delta_off(self, monkeypatch):
        """REPRO_DELTA_WIRE=0 (whole-source jobs) and the default delta
        wire produce bit-identical search results."""
        monkeypatch.delenv("REPRO_DELTA_WIRE", raising=False)
        assert delta_wire_enabled()
        _s, delta_on = run_search(
            executor="process", workers=2, max_iterations=12
        )
        monkeypatch.setenv("REPRO_DELTA_WIRE", "0")
        assert not delta_wire_enabled()
        _s, delta_off = run_search(
            executor="process", workers=2, max_iterations=12
        )
        monkeypatch.delenv("REPRO_DELTA_WIRE", raising=False)
        _s, serial = run_search(workers=1, max_iterations=12)
        assert_equivalent(delta_on, delta_off)
        assert_equivalent(delta_on, serial)


class TestBatchDispatch:
    def test_eval_batch_validation(self):
        with pytest.raises(ValueError, match="eval_batch"):
            SearchConfig(eval_batch=0)
        with pytest.raises(ValueError, match="eval_batch"):
            SearchConfig(eval_batch=True)

    def test_batch_slice_indexes_results(self):
        future = Future()
        future.set_result(["a", "b", "c"])
        slices = [parallel._BatchSlice(future, i) for i in range(3)]
        assert [s.result() for s in slices] == ["a", "b", "c"]
        assert all(s.done() for s in slices)
        assert not slices[0].cancel()

    def test_batched_run_equivalent_to_unbatched(self):
        _s, batched = run_search(
            executor="process", workers=2, eval_batch=3, max_iterations=12
        )
        _s, unbatched = run_search(
            executor="process", workers=2, eval_batch=1, max_iterations=12
        )
        assert_equivalent(batched, unbatched)
