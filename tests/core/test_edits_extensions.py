"""Extension-edit tests (§6.4's extensibility claim): stage_split."""

import pytest

from repro.cfront import nodes as N
from repro.cfront.parser import parse
from repro.core.edits import Candidate, RepairContext
from repro.core.edits.extensions import StageSplitEdit
from repro.difftest import outputs_equal, run_cpu_reference
from repro.hls import SolutionConfig, check_style, compile_unit, estimate

SPLITTABLE = """
void kernel(int a[32], int b[32], int c[32]) {
    for (int i = 0; i < 32; i++) {
        b[i] = a[i] * 2 + 1;
    }
    for (int i = 0; i < 32; i++) {
        c[i] = b[i] * b[i];
    }
}
"""

TESTS = [[[i % 7 for i in range(32)], [0] * 32, [0] * 32]]


def candidate_for(source, top="kernel"):
    unit = parse(source, top_name=top)
    return Candidate(unit=unit, config=SolutionConfig(top_name=top))


def split(cand):
    context = RepairContext(kernel_name="kernel")
    apps = StageSplitEdit().propose(cand, [], context)
    assert apps
    result = apps[0].apply(cand)
    assert result is not None
    return result


class TestStageSplit:
    def test_stages_extracted_and_dataflow_inserted(self):
        cand = split(candidate_for(SPLITTABLE))
        assert cand.unit.function("kernel__stage0") is not None
        assert cand.unit.function("kernel__stage1") is not None
        kernel = cand.unit.function("kernel")
        assert isinstance(kernel.body.items[0], N.Pragma)
        assert "dataflow" in kernel.body.items[0].text

    def test_result_is_style_clean_and_compiles(self):
        cand = split(candidate_for(SPLITTABLE))
        assert check_style(cand.unit) == []
        report = compile_unit(cand.unit, cand.config)
        assert report.ok, [str(d) for d in report.errors]

    def test_behavior_preserved(self):
        original = candidate_for(SPLITTABLE)
        cand = split(original)
        ref, _ = run_cpu_reference(original.unit, "kernel", TESTS)
        new, _ = run_cpu_reference(cand.unit, "kernel", TESTS)
        assert outputs_equal(list(ref[0]), list(new[0]))

    def test_overlap_reduces_latency(self):
        original = candidate_for(SPLITTABLE)
        cand = split(original)
        before = estimate(original.unit, original.config).cycles
        after = estimate(cand.unit, cand.config).cycles
        assert after < before

    def test_rejects_two_consumer_arrays(self):
        # `a` is read by both loops: splitting would fail dataflow checks.
        src = """
        void kernel(int a[16], int b[16], int c[16]) {
            for (int i = 0; i < 16; i++) { b[i] = a[i] + 1; }
            for (int i = 0; i < 16; i++) { c[i] = a[i] + 2; }
        }
        """
        context = RepairContext(kernel_name="kernel")
        assert StageSplitEdit().propose(candidate_for(src), [], context) == []

    def test_rejects_cross_stage_scalars(self):
        src = """
        void kernel(int a[16], int b[16], int n) {
            for (int i = 0; i < n; i++) { a[i] = i; }
            for (int i = 0; i < 16; i++) { b[i] = a[i]; }
        }
        """
        context = RepairContext(kernel_name="kernel")
        assert StageSplitEdit().propose(candidate_for(src), [], context) == []

    def test_rejects_single_loop(self):
        src = """
        void kernel(int a[16]) {
            for (int i = 0; i < 16; i++) { a[i] = i; }
        }
        """
        context = RepairContext(kernel_name="kernel")
        assert StageSplitEdit().propose(candidate_for(src), [], context) == []

    def test_rejects_non_loop_statements(self):
        src = """
        void kernel(int a[16], int b[16]) {
            for (int i = 0; i < 16; i++) { a[i] = i; }
            b[0] = a[0];
            for (int i = 0; i < 16; i++) { b[i] = a[i]; }
        }
        """
        context = RepairContext(kernel_name="kernel")
        assert StageSplitEdit().propose(candidate_for(src), [], context) == []

    def test_registered_as_perf_edit(self):
        from repro.core import build_registry

        registry = build_registry()
        names = {e.name for e in registry.perf_edits}
        assert "stage_split" in names
