"""TranspileResult report tests."""

import pytest

from repro import FuzzConfig, HeteroGen, HeteroGenConfig, SearchConfig
from repro.cli import result_to_dict

SRC = """
int kernel(int a[4]) {
    long double x = a[0];
    long double y = x * 1.0;
    return (int)y;
}
"""


@pytest.fixture(scope="module")
def result():
    config = HeteroGenConfig(
        fuzz=FuzzConfig(max_execs=150, plateau_execs=80),
        search=SearchConfig(max_iterations=40),
    )
    return HeteroGen(config).transpile(SRC, kernel_name="kernel",
                                       subject_name="report-test")


class TestReport:
    def test_summary_lists_all_fields(self, result):
        summary = result.summary()
        for field in ("subject", "HLS compatible", "behavior kept",
                      "speedup", "origin LOC", "delta LOC", "repair time",
                      "tests generated"):
            assert field in summary

    def test_source_diff_marks_changes(self, result):
        diff = result.source_diff()
        assert diff.startswith("---")
        assert "-    long double x = a[0];" in diff
        assert any(line.startswith("+") for line in diff.splitlines())

    def test_delta_loc_consistent_with_diff(self, result):
        added_lines = [
            line for line in result.source_diff().splitlines()
            if line.startswith("+") and not line.startswith("+++")
            and line[1:].strip()
        ]
        assert result.delta_loc == len(added_lines)

    def test_applied_edits_nonempty(self, result):
        assert result.applied_edits
        assert all(isinstance(e, str) for e in result.applied_edits)

    def test_json_round_trip(self, result):
        import json

        payload = result_to_dict(result)
        encoded = json.dumps(payload)
        decoded = json.loads(encoded)
        assert decoded["subject"] == "report-test"
        assert decoded["hls_compatible"] is True
        assert decoded["final_source"]

    def test_resource_report_shows_utilization(self, result):
        report = result.resource_report()
        assert "xcvu9p" in report
        assert "LUT" in report and "DSP" in report
        assert "%" in report
        assert "cycles" in report

    def test_runtime_fields_positive(self, result):
        assert result.origin_runtime_ms > 0
        assert result.converted_runtime_ms > 0
        assert result.speedup == pytest.approx(
            result.origin_runtime_ms / result.converted_runtime_ms
        )
