"""Error classification and repair localization tests (§5.2)."""

import pytest

from repro.cfront import nodes as N
from repro.cfront.parser import parse
from repro.cfront.visitor import find_all
from repro.core import RepairLocalizer, classify, classify_message
from repro.hls import SolutionConfig, compile_unit
from repro.hls.diagnostics import (
    Diagnostic,
    ErrorType,
    dataflow_check_error,
    recursion_error,
    struct_error,
    top_function_error,
    unknown_size_error,
)


class TestClassifyMessage:
    @pytest.mark.parametrize(
        "message, expected",
        [
            ("Synthesizability check failed: recursive functions are not supported",
             ErrorType.DYNAMIC_DATA_STRUCTURES),
            ("dynamic memory allocation/deallocation is not supported",
             ErrorType.DYNAMIC_DATA_STRUCTURES),
            ("Array 'data' failed dataflow checking.",
             ErrorType.DATAFLOW_OPTIMIZATION),
            ("Pre-synthesis failed: unroll factor 64 interacts",
             ErrorType.LOOP_PARALLELIZATION),
            ("Argument 'this' has an unsynthesizable struct type 'If2'",
             ErrorType.STRUCT_AND_UNION),
            ("hls::stream 'tmp' connecting dataflow processes must have static storage",
             ErrorType.STRUCT_AND_UNION),
            ("Cannot find the top function 'mane' in the design.",
             ErrorType.TOP_FUNCTION),
            ("variable 'x' has unsupported type 'long double'",
             ErrorType.UNSUPPORTED_DATA_TYPES),
            ("pointer variable 'p' is not synthesizable",
             ErrorType.UNSUPPORTED_DATA_TYPES),
        ],
    )
    def test_keyword_rules(self, message, expected):
        assert classify_message(message) == expected

    def test_unknown_message_is_none(self):
        assert classify_message("something completely different") is None

    def test_classify_falls_back_to_annotation(self):
        diag = Diagnostic(
            code="X", message="inscrutable", error_type=ErrorType.TOP_FUNCTION
        )
        assert classify(diag) == ErrorType.TOP_FUNCTION

    def test_classifier_agrees_with_compiler_annotations(self):
        """Every diagnostic our toolchain emits must classify back to the
        family it was annotated with — the §5.2 keyword path."""
        src = """
        struct L { int v; struct L *next; };
        void walk(struct L *p) { if (p != 0) { walk(p->next); } }
        int kernel(int n) {
            long double x = 1.0;
            float buf[n];
            struct L *head = (struct L *)malloc(sizeof(struct L));
            walk(head);
            return (int)x;
        }
        """
        unit = parse(src, top_name="kernel")
        report = compile_unit(unit, SolutionConfig(top_name="kernel"))
        assert report.errors
        for diag in report.errors:
            assert classify(diag) == diag.error_type, diag


class TestLocalization:
    def test_recursion_locates_self_calls(self):
        src = """
        void walk(int n) { if (n > 0) { walk(n - 1); } }
        int kernel(int n) { walk(n); return 0; }
        """
        unit = parse(src, top_name="kernel")
        func = unit.function("walk")
        locations = RepairLocalizer().locate(unit, recursion_error("walk", func.uid))
        assert locations
        located = {loc.node_uid for loc in locations}
        self_calls = [
            c for c in find_all(func.body, N.Call) if c.callee_name == "walk"
        ]
        assert {c.uid for c in self_calls} == located
        assert all(loc.function_name == "walk" for loc in locations)

    def test_symbol_decl_localization(self):
        src = "int kernel(int n) { float buf[n]; return 0; }"
        unit = parse(src, top_name="kernel")
        decl = find_all(unit, N.VarDecl)[0]
        locations = RepairLocalizer().locate(
            unit, unknown_size_error("buf", decl.uid)
        )
        assert any(loc.node_uid == decl.uid for loc in locations)

    def test_struct_localization(self):
        src = "struct S { int x; };\nint kernel() { return 0; }"
        unit = parse(src, top_name="kernel")
        locations = RepairLocalizer().locate(unit, struct_error("S", 0))
        assert locations[0].node_uid == unit.struct("S").uid

    def test_top_function_localizes_to_unit(self):
        unit = parse("int kernel() { return 0; }", top_name="kernel")
        locations = RepairLocalizer().locate(unit, top_function_error("nope"))
        assert locations[0].node_uid == unit.uid

    def test_extensibility_hook(self):
        """§5.2: 'for a new HLS error type, a user can add a new
        corresponding repair localization module'."""
        localizer = RepairLocalizer()
        sentinel = object()

        def custom(unit, diag):
            return [sentinel]

        localizer.register(ErrorType.DATAFLOW_OPTIMIZATION, custom)
        unit = parse("int kernel() { return 0; }", top_name="kernel")
        result = localizer.locate(unit, dataflow_check_error("x", 0))
        assert result == [sentinel]
