"""Bitwidth estimation / initial-version tests (§4)."""

import pytest

from repro.cfront import nodes as N
from repro.cfront import typesys as T
from repro.cfront.parser import parse
from repro.cfront.visitor import find_all
from repro.core import generate_initial_version, plan_bitwidths, profile_kernel
from repro.core.bitwidth import MARGIN_BITS
from repro.difftest import outputs_equal, run_cpu_reference

SRC = """
int kernel(int a[8], int n) {
    if (n > 8) { n = 8; }
    int ret = 0;
    int total = 0;
    for (int i = 0; i < n; i++) {
        ret = a[i] % 84;
        total += ret;
    }
    return total;
}
"""

TESTS = [[[83, 83, 83, 83, 83, 83, 83, 83], 8], [[0] * 8, 8], [[5, 10, 2, 0, 0, 0, 0, 0], 3]]


class TestProfiling:
    def test_profile_covers_all_tests(self):
        unit = parse(SRC)
        profile = profile_kernel(unit, "kernel", TESTS)
        by_name = {r.name: r for r in profile.ranges.values()}
        assert by_name["ret"].max_abs == 83
        assert by_name["total"].max_abs == 8 * 83

    def test_crashing_tests_skipped(self):
        unit = parse(SRC)
        profile = profile_kernel(unit, "kernel", [[[1], 8]] + TESTS)
        assert profile.ranges  # still produced from the valid tests


class TestPlanning:
    def plan(self):
        unit = parse(SRC)
        profile = profile_kernel(unit, "kernel", TESTS)
        return unit, plan_bitwidths(unit, profile)

    def test_paper_example_width(self):
        unit, plan = self.plan()
        widths = {plan.names[uid]: t for uid, t in plan.types.items()}
        # ret max 83 -> 7 bits + margin
        assert widths["ret"].bits == 7 + MARGIN_BITS
        assert not widths["ret"].signed

    def test_only_narrowing_changes_planned(self):
        unit, plan = self.plan()
        for chosen in plan.types.values():
            assert chosen.bits < 32

    def test_unprofiled_variables_untouched(self):
        unit = parse(SRC)
        from repro.interp import ValueProfile

        plan = plan_bitwidths(unit, ValueProfile())
        assert len(plan) == 0


class TestInitialVersion:
    def test_initial_version_types_rewritten(self):
        unit = parse(SRC)
        initial, plan, _profile = generate_initial_version(unit, "kernel", TESTS)
        rewritten = [
            d.decl
            for d in find_all(initial, N.DeclStmt)
            if isinstance(T.strip_typedefs(d.decl.type), T.FpgaIntType)
        ]
        assert rewritten
        assert unit is not initial  # original untouched
        original_types = [
            d.decl.type for d in find_all(unit, N.DeclStmt)
        ]
        assert all(not isinstance(t, T.FpgaIntType) for t in original_types)

    def test_initial_version_behaves_identically_on_profiled_tests(self):
        unit = parse(SRC)
        initial, _plan, _profile = generate_initial_version(unit, "kernel", TESTS)
        ref, _ = run_cpu_reference(unit, "kernel", TESTS)
        new, _ = run_cpu_reference(initial, "kernel", TESTS)
        for a, b in zip(ref, new):
            assert outputs_equal(list(a), list(b))

    def test_unprofiled_inputs_can_wrap(self):
        """The §6.5 caveat: widths chosen from an incomplete profile wrap
        on bigger inputs — which is precisely what differential testing
        plus the widen edit handle."""
        unit = parse(SRC)
        small_tests = [[[1, 1, 0, 0, 0, 0, 0, 0], 2]]
        initial, plan, _ = generate_initial_version(unit, "kernel", small_tests)
        assert plan.types  # something was narrowed
        big = [[[83] * 8, 8]]
        from repro.interp import ExecLimits

        limits = ExecLimits(max_steps=50_000)
        ref, _ = run_cpu_reference(unit, "kernel", big, limits=limits)
        new, _ = run_cpu_reference(initial, "kernel", big, limits=limits)
        assert ref[0] is not None
        # Divergence may manifest as a wrong value or as a runaway loop
        # (wrapped counter) cut off by the step budget.
        diverged = new[0] is None or not outputs_equal(list(ref[0]), list(new[0]))
        assert diverged
