"""Process-based evaluation executor: wire format, determinism and the
executor/worker configuration surface."""

import warnings

import pytest

from repro.cfront.parser import parse
from repro.core import RepairSearch, SearchConfig
from repro.core.edits import Candidate
from repro.core.parallel import (
    EXECUTOR_ENV,
    WORKERS_ENV,
    default_executor,
    default_workers,
    run_subjects,
)
from repro.hls import SimulatedClock, SolutionConfig

from tests.core.test_evalcache import (
    BROKEN_SRC,
    TESTS,
    assert_equivalent,
    run_search,
)


class TestDefaults:
    def test_executor_from_env(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV, raising=False)
        assert default_executor() == "thread"
        monkeypatch.setenv(EXECUTOR_ENV, "process")
        assert default_executor() == "process"
        monkeypatch.setenv(EXECUTOR_ENV, "  THREAD ")
        assert default_executor() == "thread"
        monkeypatch.setenv(EXECUTOR_ENV, "bogus")
        assert default_executor() == "thread"

    def test_workers_from_env(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert default_workers() is None
        monkeypatch.setenv(WORKERS_ENV, "4")
        assert default_workers() == 4
        monkeypatch.setenv(WORKERS_ENV, "0")
        assert default_workers() == 1
        monkeypatch.setenv(WORKERS_ENV, "nope")
        assert default_workers() is None

    def test_unknown_executor_rejected(self):
        unit = parse(BROKEN_SRC, top_name="kernel")
        with pytest.raises(ValueError, match="executor"):
            RepairSearch(
                original=unit,
                kernel_name="kernel",
                tests=TESTS,
                config=SearchConfig(executor="fiber"),
            )


class TestThreadWorkerWarning:
    def test_thread_executor_with_workers_warns(self):
        unit = parse(BROKEN_SRC, top_name="kernel")
        search = RepairSearch(
            original=unit,
            kernel_name="kernel",
            tests=TESTS,
            config=SearchConfig(
                max_iterations=2, workers=2, executor="thread"
            ),
            clock=SimulatedClock(),
        )
        initial = Candidate(unit=unit, config=SolutionConfig(top_name="kernel"))
        with pytest.warns(RuntimeWarning, match="GIL serializes"):
            search.run(initial)

    def test_no_warning_when_serial_or_process(self):
        for kwargs in ({"workers": 1, "executor": "thread"},
                       {"workers": 2, "executor": "process"}):
            unit = parse(BROKEN_SRC, top_name="kernel")
            search = RepairSearch(
                original=unit,
                kernel_name="kernel",
                tests=TESTS,
                config=SearchConfig(max_iterations=2, **kwargs),
                clock=SimulatedClock(),
            )
            initial = Candidate(
                unit=unit, config=SolutionConfig(top_name="kernel")
            )
            with warnings.catch_warnings():
                warnings.simplefilter("error", RuntimeWarning)
                search.run(initial)


class TestProcessExecutorEquivalence:
    """The acceptance contract: process-parallel runs are bit-identical
    to serial runs in every simulated measurement."""

    @pytest.mark.parametrize("workers", [1, 3])
    def test_process_identical_to_serial(self, workers):
        _s, serial = run_search(use_cache=True, workers=1, executor="thread")
        _s, process = run_search(
            use_cache=True, workers=workers, executor="process"
        )
        assert_equivalent(serial, process)

    def test_process_without_cache_identical_to_serial(self):
        _s, serial = run_search(use_cache=False, workers=1, executor="thread")
        _s, process = run_search(
            use_cache=False, workers=2, executor="process"
        )
        assert_equivalent(serial, process)

    def test_process_jobs_do_not_tick_parent_compile_counter(self):
        """Real compiles happen in the workers; the parent-process global
        invocation counter must not move (the per-run accounting lives in
        ``SearchStats.hls_invocations`` instead)."""
        from repro.hls.compiler import compile_invocations

        before = compile_invocations()
        _s, result = run_search(
            use_cache=False, workers=2, executor="process"
        )
        assert compile_invocations() == before
        assert result.stats.hls_invocations > 0


class TestSubjectFanout:
    def test_serial_fanout_matches_input_order(self):
        from repro.baselines.variants import default_config

        config = default_config(
            budget_seconds=1200.0, max_iterations=30, fuzz_execs=150
        )
        summaries = run_subjects(["P3", "P1"], "HeteroGen", config, workers=1)
        assert [s["subject"] for s in summaries] == ["P3", "P1"]
        for summary in summaries:
            assert summary["attempts"] > 0
            assert isinstance(summary["history"], list)
            assert summary["final_source"]


class TestSearchConfigValidation:
    def test_workers_must_be_a_positive_integer(self):
        for bad in (0, -1, 1.5, True, "2", None):
            with pytest.raises(ValueError):
                SearchConfig(workers=bad)

    def test_unknown_executor_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown executor"):
            SearchConfig(executor="fiber")

    def test_valid_configurations_accepted(self):
        assert SearchConfig(workers=1).workers == 1
        cfg = SearchConfig(workers=4, executor="process")
        assert cfg.workers == 4 and cfg.executor == "process"
