"""Evaluation-cache tests: the memo itself, and the equivalence
guarantees the search makes about it (cached vs uncached vs parallel
runs are indistinguishable in every simulated measurement)."""

import re

import pytest

from repro.cfront.parser import parse
from repro.core import RepairSearch, SearchConfig
from repro.core.edits import Candidate
from repro.core.evalcache import (
    CachedEvaluation,
    EvalCache,
    candidate_key,
    context_token,
)
from repro.hls import SimulatedClock, SolutionConfig
from repro.hls.compiler import compile_invocations
from repro.subjects import get_subject


def entry(seconds=1.0):
    return CachedEvaluation(
        style_violations=(),
        compile_report=None,
        diff_report=None,
        charges=(("hls_compile", seconds),),
    )


class TestEvalCache:
    def test_roundtrip_and_counters(self):
        cache = EvalCache()
        assert cache.get("k") is None
        assert cache.misses == 1 and cache.hits == 0
        cache.put("k", entry())
        assert cache.get("k") is not None
        assert cache.hits == 1
        assert cache.lookups == 2
        assert cache.hit_ratio == pytest.approx(0.5)

    def test_contains_does_not_disturb_counters(self):
        cache = EvalCache()
        cache.put("k", entry())
        assert cache.contains("k")
        assert not cache.contains("other")
        assert cache.hits == 0 and cache.misses == 0

    def test_lru_eviction(self):
        cache = EvalCache(max_entries=2)
        cache.put("a", entry())
        cache.put("b", entry())
        cache.get("a")  # refresh a; b becomes least-recent
        cache.put("c", entry())
        assert cache.contains("a") and cache.contains("c")
        assert not cache.contains("b")
        assert len(cache) == 2

    def test_clear(self):
        cache = EvalCache()
        cache.put("k", entry())
        cache.get("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0

    def test_eviction_past_default_capacity(self):
        """Filling past DEFAULT_MAX_ENTRIES evicts exactly the oldest
        entries, in insertion order, and never overshoots the bound."""
        from repro.core.evalcache import DEFAULT_MAX_ENTRIES

        cache = EvalCache()
        overflow = 3
        total = DEFAULT_MAX_ENTRIES + overflow
        for i in range(total):
            cache.put(f"k{i}", entry(float(i)))
            assert len(cache) <= DEFAULT_MAX_ENTRIES
        assert len(cache) == DEFAULT_MAX_ENTRIES
        for i in range(overflow):
            assert not cache.contains(f"k{i}")
        assert cache.contains(f"k{overflow}")
        assert cache.contains(f"k{total - 1}")

    def test_reinserted_entry_replays_charges_bit_identically(self):
        """An entry that was evicted and later recomputed must replay the
        exact same charge journal — eviction can cost wall-clock, never
        simulated time."""
        charges = (("style_check", 0.125), ("hls_compile", 3.75))
        original = CachedEvaluation(
            style_violations=(),
            compile_report=None,
            diff_report=None,
            charges=charges,
        )
        cache = EvalCache(max_entries=1)
        cache.put("k", original)
        cache.put("other", entry())  # evicts "k"
        assert not cache.contains("k")
        cache.put("k", original)  # the deterministic toolchain recomputed it

        clock_a, clock_b = SimulatedClock.recording(), SimulatedClock.recording()
        clock_a.replay(charges)
        clock_b.replay(cache.get("k").charges)
        assert clock_b.seconds == clock_a.seconds
        assert clock_b.events == clock_a.events
        assert dict(clock_b.by_activity) == dict(clock_a.by_activity)
        assert dict(clock_b.counts) == dict(clock_a.counts)


SRC_A = """
int kernel(int a[4], int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) { acc += a[i]; }
    return acc;
}
"""


class TestCandidateKey:
    def test_canonical_over_reparses(self):
        unit1 = parse(SRC_A, top_name="kernel")
        unit2 = parse(SRC_A, top_name="kernel")
        config = SolutionConfig(top_name="kernel")
        assert candidate_key(unit1, config, "ctx") == candidate_key(
            unit2, config, "ctx"
        )

    def test_sensitive_to_config_and_context(self):
        unit = parse(SRC_A, top_name="kernel")
        config = SolutionConfig(top_name="kernel")
        base = candidate_key(unit, config, "ctx")
        slower = SolutionConfig(top_name="kernel", clock_period_ns=7.5)
        assert candidate_key(unit, slower, "ctx") != base
        assert candidate_key(unit, config, "other-ctx") != base

    def test_context_token_binds_the_oracle(self):
        unit = parse(SRC_A, top_name="kernel")
        tests = [[[1, 2, 3, 4], 4]]
        base = context_token(unit, "kernel", tests)
        assert context_token(unit, "kernel", tests) == base
        assert context_token(unit, "kernel", tests + [[[0] * 4, 0]]) != base
        assert context_token(unit, "kernel", tests, extra="max_faults=3") != base


BROKEN_SRC = """
int kernel(int a[8], int n) {
    if (n > 8) { n = 8; }
    long double acc = 0.0;
    for (int i = 0; i < n; i++) {
        long double x = a[i];
        acc = acc + x;
    }
    return (int)acc;
}
"""

TESTS = [
    [[1, 2, 3, 4, 5, 6, 7, 8], 8],
    [[10, -10, 3, 0, 0, 0, 0, 0], 3],
    [[0] * 8, 0],
]


def run_search(cache=None, **overrides):
    unit = parse(BROKEN_SRC, top_name="kernel")
    overrides.setdefault("max_iterations", 40)
    # These tests assert enumerated-search behaviour (duplicate programs
    # reached via distinct edit orders feed the cache-hit assertions);
    # synthesis dedups those duplicates at proposal time, so pin it off
    # regardless of $REPRO_SYNTH.
    overrides.setdefault("use_synthesis", False)
    config = SearchConfig(**overrides)
    search = RepairSearch(
        original=unit,
        kernel_name="kernel",
        tests=TESTS,
        config=config,
        clock=SimulatedClock(),
        cache=cache,
    )
    initial = Candidate(unit=unit, config=SolutionConfig(top_name="kernel"))
    return search, search.run(initial)


def _strip_uids(lines):
    """Edit labels embed AST node uids (``loop@1124``) drawn from a
    process-global counter, so they differ between parses of the same
    source; normalize them before cross-run comparison."""
    return [re.sub(r"@\d+", "@N", line) for line in lines]


def assert_equivalent(a, b):
    """Two SearchResults are indistinguishable in every simulated
    measurement: fitness, history, clock totals and activity counts."""
    assert a.best is not None and b.best is not None
    assert a.best.fitness == b.best.fitness
    assert _strip_uids(a.best.candidate.applied) == _strip_uids(
        b.best.candidate.applied
    )
    assert _strip_uids(a.history) == _strip_uids(b.history)
    assert a.stats.attempts == b.stats.attempts
    assert a.clock.seconds == pytest.approx(b.clock.seconds)
    assert a.clock.counts == b.clock.counts
    assert a.clock.by_activity.keys() == b.clock.by_activity.keys()
    for activity, seconds in a.clock.by_activity.items():
        assert seconds == pytest.approx(b.clock.by_activity[activity])


class TestCachedEquivalence:
    def test_cached_run_identical_to_uncached(self):
        _s, cached = run_search(use_cache=True)
        _s, uncached = run_search(use_cache=False)
        assert_equivalent(cached, uncached)

    def test_within_run_hits_skip_real_work(self):
        """Distinct edit paths converge on identical programs, so even a
        single run sees hits — and hits never count as real toolchain
        executions."""
        search, result = run_search(use_cache=True)
        stats = result.stats
        assert stats.cache_hits > 0
        assert stats.cache_hit_ratio > 0.0
        assert stats.attempts == stats.cache_hits + stats.cache_misses
        assert stats.hls_invocations == stats.cache_misses - stats.style_rejections
        assert stats.hls_invocations < stats.attempts

    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_workers_identical_to_serial(self, workers):
        _s, serial = run_search(use_cache=True, workers=1)
        _s, parallel = run_search(use_cache=True, workers=workers)
        assert_equivalent(serial, parallel)
        assert serial.stats.cache_hits == parallel.stats.cache_hits

    def test_parallel_without_cache_identical_to_serial(self):
        _s, serial = run_search(use_cache=False, workers=1)
        _s, parallel = run_search(use_cache=False, workers=3)
        assert_equivalent(serial, parallel)


class TestSharedCacheAcrossRuns:
    """The acceptance scenario: repeat a search on P5 with a shared
    cache; the warm run answers from the memo instead of re-running the
    toolchain, while every simulated measurement stays identical."""

    def run_p5(self, cache):
        subject = get_subject("P5")
        unit = subject.parse()
        config = SearchConfig(max_iterations=60, seed=2022)
        search = RepairSearch(
            original=unit,
            kernel_name=subject.kernel,
            tests=subject.existing_test_list(),
            config=config,
            clock=SimulatedClock(),
            cache=cache,
        )
        initial = Candidate(unit=unit, config=subject.solution)
        return search, search.run(initial)

    def test_warm_run_skips_real_compiles(self):
        cache = EvalCache()
        _s, cold = self.run_p5(cache)

        before = compile_invocations()
        _s, warm = self.run_p5(cache)
        real_compiles = compile_invocations() - before

        # Strictly fewer real compile_unit executions than attempts.
        assert real_compiles == warm.stats.hls_invocations
        assert real_compiles < warm.stats.attempts
        assert warm.stats.cache_hit_ratio > 0.0
        assert warm.stats.cache_hits > cold.stats.cache_hits

        # ... while remaining indistinguishable in simulated terms.
        assert_equivalent(cold, warm)


class TestBackendIndependentKeys:
    """Cache keys must carry no execution-backend information: both
    backends are bit-identical in every simulated measurement, so an
    entry written under the tree-walker is valid under the compiled
    engine (and vice versa)."""

    def evaluate_once(self, cache, backend):
        unit = parse(BROKEN_SRC, top_name="kernel")
        search = RepairSearch(
            original=unit,
            kernel_name="kernel",
            tests=TESTS,
            config=SearchConfig(max_iterations=10, interp_backend=backend),
            clock=SimulatedClock(),
            cache=cache,
        )
        candidate = Candidate(unit=unit, config=SolutionConfig(top_name="kernel"))
        return search.evaluate(candidate), search

    def test_tree_populated_cache_hits_under_compiled(self):
        cache = EvalCache()
        cold_eval, cold_search = self.evaluate_once(cache, "tree")
        assert cold_search.stats.cache_misses == 1
        assert cold_search.stats.cache_hits == 0

        warm_eval, warm_search = self.evaluate_once(cache, "compiled")
        assert warm_search.stats.cache_hits == 1
        assert warm_search.stats.cache_misses == 0
        assert warm_eval.fitness == cold_eval.fitness

    def test_context_token_lacks_backend_marker(self):
        """The regression this guards against: someone 'helpfully' adding
        the backend name to the cache context, silently halving the hit
        ratio of mixed-backend runs."""
        _eval, tree_search = self.evaluate_once(EvalCache(), "tree")
        _eval, compiled_search = self.evaluate_once(EvalCache(), "compiled")
        assert tree_search._cache_context == compiled_search._cache_context
