"""Fitness-function and repair-search tests."""

import math

import pytest

from repro.cfront.parser import parse
from repro.core import Fitness, RepairSearch, SearchConfig, fitness_from_reports
from repro.core.edits import Candidate
from repro.difftest import DiffReport
from repro.hls import SimulatedClock, SolutionConfig
from repro.hls.diagnostics import CompileReport, Diagnostic, ErrorType


def diag(n=1):
    return [
        Diagnostic(code="X", message=f"e{i}", error_type=ErrorType.TOP_FUNCTION)
        for i in range(n)
    ]


class TestFitness:
    def test_lexicographic_priorities(self):
        """Compatibility beats behaviour beats latency — the paper's
        hard/soft constraint split (§1)."""
        broken = Fitness(compile_errors=1, fail_ratio=0.0, latency_ns=1.0)
        slow_but_ok = Fitness(compile_errors=0, fail_ratio=0.0, latency_ns=1e9)
        assert slow_but_ok.better_than(broken)
        diverging = Fitness(compile_errors=0, fail_ratio=0.1, latency_ns=1.0)
        assert slow_but_ok.better_than(diverging)
        faster = Fitness(compile_errors=0, fail_ratio=0.0, latency_ns=1e8)
        assert faster.better_than(slow_but_ok)

    def test_better_than_none(self):
        assert Fitness(5, 1.0, math.inf).better_than(None)

    def test_flags(self):
        ok = Fitness(0, 0.0, 100.0)
        assert ok.is_compatible and ok.is_behavior_preserving
        partial = Fitness(0, 0.25, 100.0)
        assert partial.is_compatible and not partial.is_behavior_preserving

    def test_from_reports_with_errors(self):
        fit = fitness_from_reports(CompileReport(diagnostics=diag(3)), None)
        assert fit.compile_errors == 3
        assert math.isinf(fit.latency_ns)

    def test_from_reports_clean(self):
        report = DiffReport(
            total=10, matching=9, cpu_latency_ns=100.0, fpga_latency_ns=50.0
        )
        fit = fitness_from_reports(CompileReport(), report)
        assert fit.compile_errors == 0
        assert fit.fail_ratio == pytest.approx(0.1)
        assert fit.latency_ns == 50.0

    def test_str_rendering(self):
        assert "inf" in str(Fitness(1, 1.0, math.inf))
        assert "0.050ms" in str(Fitness(0, 0.0, 50_000.0))


BROKEN_SRC = """
int kernel(int a[8], int n) {
    if (n > 8) { n = 8; }
    long double acc = 0.0;
    for (int i = 0; i < n; i++) {
        long double x = a[i];
        acc = acc + x;
    }
    return (int)acc;
}
"""

TESTS = [
    [[1, 2, 3, 4, 5, 6, 7, 8], 8],
    [[10, -10, 3, 0, 0, 0, 0, 0], 3],
    [[0] * 8, 0],
]


class TestRepairSearch:
    def run_search(self, **overrides):
        unit = parse(BROKEN_SRC, top_name="kernel")
        overrides.setdefault("max_iterations", 40)
        config = SearchConfig(**overrides)
        clock = SimulatedClock()
        search = RepairSearch(
            original=unit,
            kernel_name="kernel",
            tests=TESTS,
            config=config,
            clock=clock,
        )
        initial = Candidate(unit=unit, config=SolutionConfig(top_name="kernel"))
        return search, search.run(initial)

    def test_repairs_to_green(self):
        search, result = self.run_search()
        assert result.success
        assert result.best.fitness.is_behavior_preserving
        applied = result.best.candidate.applied
        assert any(a.startswith("type_trans") for a in applied)

    def test_stats_accounting(self):
        search, result = self.run_search()
        stats = result.stats
        assert stats.attempts >= stats.hls_invocations
        # Every attempt is answered by the cache or by a real toolchain run.
        assert stats.attempts == stats.cache_hits + stats.cache_misses
        # Only cache misses pay for a real style check / HLS compile.
        assert stats.style_checks == stats.cache_misses
        assert stats.hls_invocations == stats.cache_misses - stats.style_rejections
        assert 0 < stats.hls_invocation_ratio <= 1.0

    def test_stats_accounting_without_cache(self):
        search, result = self.run_search(use_cache=False)
        stats = result.stats
        assert stats.cache_hits == 0
        assert stats.cache_misses == stats.attempts
        assert stats.style_checks == stats.attempts
        assert stats.hls_invocations == stats.attempts - stats.style_rejections

    def test_budget_clamps_reported_repair_time(self):
        """The reported repair time never exceeds the configured budget,
        even when the final evaluation overshoots it."""
        search, result = self.run_search(budget_seconds=200.0)
        assert result.budget_seconds == 200.0
        assert result.repair_seconds <= 200.0
        assert search.clock.seconds >= result.repair_seconds

    def test_clock_accumulates_toolchain_time(self):
        search, result = self.run_search()
        assert result.repair_seconds > 0
        assert result.repair_minutes == pytest.approx(result.repair_seconds / 60)

    def test_budget_stops_search(self):
        search, result = self.run_search(budget_seconds=1.0)
        assert result.stats.iterations <= 2

    def test_without_checker_compiles_everything(self):
        search, result = self.run_search(use_style_checker=False)
        assert result.stats.style_checks == 0
        # Every non-memoized candidate pays a full HLS compile.
        assert result.stats.hls_invocations == result.stats.cache_misses
        assert result.success

    def test_without_dependence_still_succeeds_but_tries_more(self):
        _s1, guided = self.run_search(seed=5)
        _s2, blind = self.run_search(use_dependence=False, seed=5,
                                     max_iterations=200)
        assert guided.success
        assert blind.success
        assert blind.stats.attempts >= guided.stats.attempts

    def test_perf_exploration_improves_latency(self):
        _s, no_perf = self.run_search(perf_exploration=False)
        _s, with_perf = self.run_search(perf_exploration=True)
        assert with_perf.best.fitness.latency_ns <= no_perf.best.fitness.latency_ns

    def test_history_records_improvements(self):
        _search, result = self.run_search()
        assert any("new best" in line for line in result.history)
