"""Dataflow-optimization edit tests: split, partition_fix, delete, move."""

import pytest

from repro.cfront import nodes as N
from repro.cfront import typesys as T
from repro.cfront.parser import parse
from repro.cfront.visitor import find_all
from repro.core.edits import Candidate, RepairContext
from repro.core.edits.dataflow import (
    DeleteDataflowEdit,
    MoveDataflowEdit,
    PartitionFixEdit,
    SplitBufferEdit,
)
from repro.difftest import outputs_equal, run_cpu_reference
from repro.hls import SolutionConfig, compile_unit
from repro.hls.pragmas import collect_pragmas

SHARED_SRC = """
void stage(int a[8], int out[8]) {
    for (int i = 0; i < 8; i++) { out[i] = a[i] + 1; }
}
void kernel(int data[8], int x[8], int y[8]) {
    #pragma HLS dataflow
    stage(data, x);
    stage(data, y);
}
"""

PARTITION_SRC = """
void kernel(int n) {
    int buf[13];
    #pragma HLS array_partition variable=buf factor=4
    for (int i = 0; i < 13; i++) { buf[i] = i; }
    int total = 0;
    for (int i = 0; i < 13; i++) { total += buf[i]; }
}
"""


def candidate_for(source, top="kernel"):
    unit = parse(source, top_name=top)
    return Candidate(unit=unit, config=SolutionConfig(top_name=top))


def diags_for(cand):
    return compile_unit(cand.unit, cand.config).errors


def behaves_like(original, candidate, kernel, tests):
    ref, _ = run_cpu_reference(original, kernel, tests)
    new, _ = run_cpu_reference(candidate, kernel, tests)
    return all(outputs_equal(list(a), list(b)) for a, b in zip(ref, new))


class TestSplit:
    def test_split_duplicates_shared_array(self):
        cand = candidate_for(SHARED_SRC)
        diags = diags_for(cand)
        context = RepairContext(kernel_name="kernel")
        apps = SplitBufferEdit().propose(cand, diags, context)
        assert apps
        fixed = apps[0].apply(cand)
        report = compile_unit(fixed.unit, fixed.config)
        assert report.ok, [str(d) for d in report.errors]
        # Dataflow pragma survives (the performance-preserving fix).
        assert any(
            p.directive == "dataflow" for p in collect_pragmas(fixed.unit)
        )

    def test_split_preserves_behavior(self):
        cand = candidate_for(SHARED_SRC)
        context = RepairContext(kernel_name="kernel")
        fixed = SplitBufferEdit().propose(cand, diags_for(cand), context)[0].apply(cand)
        tests = [[[1, 2, 3, 4, 5, 6, 7, 8], [0] * 8, [0] * 8]]
        assert behaves_like(cand.unit, fixed.unit, "kernel", tests)

    def test_no_proposal_without_dataflow_diag(self):
        cand = candidate_for("int kernel() { return 0; }")
        context = RepairContext(kernel_name="kernel")
        assert SplitBufferEdit().propose(cand, [], context) == []


class TestDelete:
    def test_delete_clears_error_but_hints_slower(self):
        cand = candidate_for(SHARED_SRC)
        diags = diags_for(cand)
        context = RepairContext(kernel_name="kernel")
        apps = DeleteDataflowEdit().propose(cand, diags, context)
        assert apps
        assert apps[0].performance_hint < 0
        fixed = apps[0].apply(cand)
        assert compile_unit(fixed.unit, fixed.config).ok
        assert not any(
            p.directive == "dataflow" for p in collect_pragmas(fixed.unit)
        )


class TestPartitionFix:
    def test_pad_array_to_multiple(self):
        cand = candidate_for(PARTITION_SRC)
        diags = diags_for(cand)
        context = RepairContext(kernel_name="kernel")
        apps = PartitionFixEdit().propose(cand, diags, context)
        pad = next(a for a in apps if "pad_array" in a.label)
        fixed = pad.apply(cand)
        decl = next(
            d.decl for d in find_all(fixed.unit, N.DeclStmt)
            if d.decl.name == "buf"
        )
        assert T.strip_typedefs(decl.type).size == 16
        assert compile_unit(fixed.unit, fixed.config).ok

    def test_snap_factor_to_divisor(self):
        cand = candidate_for(PARTITION_SRC)
        diags = diags_for(cand)
        context = RepairContext(kernel_name="kernel")
        apps = PartitionFixEdit().propose(cand, diags, context)
        snap = next(a for a in apps if "snap_factor" in a.label)
        fixed = snap.apply(cand)
        pragma = next(
            p for p in collect_pragmas(fixed.unit)
            if p.directive == "array_partition"
        )
        assert 13 % pragma.factor == 0
        assert compile_unit(fixed.unit, fixed.config).ok

    def test_pad_preserves_behavior(self):
        cand = candidate_for(PARTITION_SRC)
        context = RepairContext(kernel_name="kernel")
        apps = PartitionFixEdit().propose(cand, diags_for(cand), context)
        pad = next(a for a in apps if "pad_array" in a.label)
        fixed = pad.apply(cand)
        assert behaves_like(cand.unit, fixed.unit, "kernel", [[0]])


class TestMove:
    def test_misplaced_dataflow_moved_to_top(self):
        src = """
        void kernel(int a[4]) {
            if (a[0]) {
                #pragma HLS dataflow
                a[1] = 2;
            }
        }
        """
        cand = candidate_for(src)
        context = RepairContext(kernel_name="kernel")
        apps = MoveDataflowEdit().propose(cand, [], context)
        assert apps
        fixed = apps[0].apply(cand)
        func = fixed.unit.function("kernel")
        assert isinstance(func.body.items[0], N.Pragma)
        from repro.hls import check_style

        assert check_style(fixed.unit) == []
