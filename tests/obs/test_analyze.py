"""Journal analytics: loader leniency, aggregation, critical path,
flamegraph exports, structural diff."""

from __future__ import annotations

import json

import pytest

from repro.hls.clock import ACT_HLS_COMPILE, ACT_STYLE_CHECK, SimulatedClock
from repro.obs import TraceRecorder
from repro.obs.analyze import (
    collapsed_stacks,
    critical_path,
    diff_metrics,
    diff_traces,
    edit_stats,
    folded_lines,
    load_journal,
    render_diff,
    render_summary,
    speedscope_document,
    stage_stats,
)
from repro.obs.export import write_journal


def _recorded_run(iterations=2, compile_seconds=540.0):
    """A miniature but structurally faithful pipeline trace."""
    rec = TraceRecorder()
    clock = SimulatedClock.recording()
    with rec.span("transpile", clock=clock, kernel="k"):
        with rec.span("fuzz", clock=clock):
            clock.charge(ACT_STYLE_CHECK, 20.0)
        with rec.span("search", clock=clock):
            for i in range(1, iterations + 1):
                with rec.span("search.iteration", clock=clock, iteration=i):
                    edit = "type_trans" if i % 2 else "loop_split"
                    with rec.span("search.evaluate", clock=clock, edit=edit):
                        with rec.span("hls_compile", clock=clock):
                            clock.charge(ACT_HLS_COMPILE, compile_seconds)
    return rec


def _journal(tmp_path, name="run.jsonl", **kwargs):
    rec = _recorded_run(**kwargs)
    return write_journal(rec, str(tmp_path / name))


# ---------------------------------------------------------------------------
# Loader
# ---------------------------------------------------------------------------


class TestLoadJournal:
    def test_round_trip_of_a_batch_journal(self, tmp_path):
        path = _journal(tmp_path)
        trace = load_journal(path)
        assert trace.header["version"] >= 1
        assert not trace.truncated and trace.skipped_lines == 0
        names = sorted(s["name"] for s in trace.spans.values())
        assert names.count("search.iteration") == 2
        assert names.count("hls_compile") == 2
        roots = [trace.spans[s]["name"] for s in trace.roots]
        assert roots == ["transpile"]
        # Lineage: evaluate under iteration under search.
        for sid, span in trace.spans.items():
            if span["name"] == "search.evaluate":
                parent = trace.spans[span["parent"]]
                assert parent["name"] == "search.iteration"

    def test_truncated_final_line_is_tolerated(self, tmp_path):
        path = _journal(tmp_path)
        text = open(path).read()
        cut = text[: text.rindex('"name"')]  # cut the last record mid-object
        assert not cut.endswith("\n")
        trunc = tmp_path / "trunc.jsonl"
        trunc.write_text(cut)

        trace = load_journal(str(trunc))
        assert trace.truncated
        with pytest.raises(ValueError, match="truncated"):
            load_journal(str(trunc), strict=True)

    def test_orphan_spans_promote_to_root_in_lenient_mode(self, tmp_path):
        path = _journal(tmp_path)
        # Drop the root span record: every direct child becomes orphaned.
        lines = open(path).read().splitlines()
        kept = [l for l in lines if '"name": "transpile"' not in l]
        partial = tmp_path / "partial.jsonl"
        partial.write_text("\n".join(kept) + "\n")

        trace = load_journal(str(partial))
        root_names = sorted(trace.spans[s]["name"] for s in trace.roots)
        assert root_names == ["fuzz", "search"]
        with pytest.raises(ValueError, match="unknown parent"):
            load_journal(str(partial), strict=True)

    def test_garbage_line_skipped_lenient_raises_strict(self, tmp_path):
        path = _journal(tmp_path)
        lines = open(path).read().splitlines()
        lines.insert(2, "not json at all")
        bad = tmp_path / "bad.jsonl"
        bad.write_text("\n".join(lines) + "\n")

        trace = load_journal(str(bad))
        assert trace.skipped_lines == 1
        with pytest.raises(ValueError, match="not JSON"):
            load_journal(str(bad), strict=True)


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


class TestAggregation:
    def test_stage_stats_totals_and_self_times(self, tmp_path):
        trace = load_journal(_journal(tmp_path))
        stats = stage_stats(trace)
        assert stats["hls_compile"].count == 2
        assert stats["hls_compile"].sim_s == pytest.approx(1080.0)
        # All compile time is self time (leaf), none of evaluate's is.
        assert stats["hls_compile"].sim_self_s == pytest.approx(1080.0)
        assert stats["search.evaluate"].sim_s == pytest.approx(1080.0)
        assert stats["search.evaluate"].sim_self_s == pytest.approx(0.0)
        # The root totals the whole run.
        assert stats["transpile"].sim_s == pytest.approx(1100.0)
        assert stats["transpile"].sim_self_s == pytest.approx(0.0)
        for stat in stats.values():
            assert stat.wall_self_us >= 0.0

    def test_edit_stats_split_evaluations_by_family(self, tmp_path):
        trace = load_journal(_journal(tmp_path))
        edits = edit_stats(trace)
        assert sorted(edits) == ["loop_split", "type_trans"]
        assert edits["type_trans"].count == 1
        assert edits["loop_split"].sim_s == pytest.approx(540.0)

    def test_critical_path_follows_the_heavy_chain(self, tmp_path):
        trace = load_journal(_journal(tmp_path))
        path = critical_path(trace, clock="sim")
        assert [hop["name"] for hop in path] == [
            "transpile", "search", "search.iteration",
            "search.evaluate", "hls_compile",
        ]
        assert path[0]["total"] == pytest.approx(1100.0)
        assert path[-1]["self"] == pytest.approx(540.0)


# ---------------------------------------------------------------------------
# Flamegraphs
# ---------------------------------------------------------------------------


class TestFlamegraphs:
    def test_sim_collapsed_stacks(self, tmp_path):
        trace = load_journal(_journal(tmp_path))
        stacks = collapsed_stacks(trace, clock="sim")
        assert stacks["transpile;fuzz"] == 20_000_000
        assert stacks[
            "transpile;search;search.iteration;search.evaluate;hls_compile"
        ] == 1_080_000_000
        # Non-leaf self time of zero is elided, not emitted as 0.
        assert "transpile;search" not in stacks

    def test_folded_lines_are_sorted_and_parseable(self, tmp_path):
        trace = load_journal(_journal(tmp_path))
        lines = folded_lines(trace, clock="sim")
        assert lines == sorted(lines)
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert int(weight) > 0 and stack

    def test_speedscope_profiles_are_well_nested(self, tmp_path):
        trace = load_journal(_journal(tmp_path))
        doc = speedscope_document(trace, name="t")
        assert len(doc["profiles"]) == 2
        frame_count = len(doc["shared"]["frames"])
        for profile in doc["profiles"]:
            depth = []
            at = 0
            for event in profile["events"]:
                assert event["at"] >= at
                at = event["at"]
                assert 0 <= event["frame"] < frame_count
                if event["type"] == "O":
                    depth.append(event["frame"])
                else:
                    assert depth.pop() == event["frame"]
            assert depth == []  # every open frame closed
            assert profile["endValue"] == at

    def test_speedscope_document_is_json_serializable(self, tmp_path):
        trace = load_journal(_journal(tmp_path))
        json.dumps(speedscope_document(trace))


# ---------------------------------------------------------------------------
# Diff
# ---------------------------------------------------------------------------


class TestDiff:
    def test_identical_runs_diff_clean_at_zero_tolerance(self, tmp_path):
        a = load_journal(_journal(tmp_path, "a.jsonl"))
        b = load_journal(_journal(tmp_path, "b.jsonl"))
        diff = diff_traces(a, b, sim_tolerance=0.0, count_tolerance=0)
        assert diff.clean
        assert diff.regressions == []
        assert "no regressions" in render_diff(diff)

    def test_extra_work_is_a_count_and_sim_regression(self, tmp_path):
        a = load_journal(_journal(tmp_path, "a.jsonl", iterations=2))
        b = load_journal(_journal(tmp_path, "b.jsonl", iterations=3))
        diff = diff_traces(a, b)
        kinds = {(r["stage"], r["kind"]) for r in diff.regressions}
        assert ("search.iteration", "count") in kinds
        assert ("hls_compile", "sim_seconds") in kinds
        assert not diff.clean
        assert "REGRESSION" in render_diff(diff)

    def test_less_work_is_an_improvement_not_a_regression(self, tmp_path):
        a = load_journal(_journal(tmp_path, "a.jsonl", iterations=3))
        b = load_journal(_journal(tmp_path, "b.jsonl", iterations=2))
        diff = diff_traces(a, b)
        assert diff.clean
        kinds = {(i["stage"], i["kind"]) for i in diff.improvements}
        assert ("search.iteration", "count") in kinds

    def test_sim_tolerance_absorbs_bounded_growth(self, tmp_path):
        a = load_journal(_journal(tmp_path, "a.jsonl", compile_seconds=500.0))
        b = load_journal(_journal(tmp_path, "b.jsonl", compile_seconds=510.0))
        assert not diff_traces(a, b).clean
        assert diff_traces(a, b, sim_tolerance=0.05).clean

    def test_wall_only_gated_when_tolerance_given(self, tmp_path):
        a = load_journal(_journal(tmp_path, "a.jsonl"))
        b = load_journal(_journal(tmp_path, "b.jsonl"))
        # Absurdly tight wall tolerance: wall noise now counts.
        diff = diff_traces(a, b, wall_tolerance=-0.999999)
        assert any(r["kind"] == "wall" for r in diff.regressions)
        assert diff_traces(a, b).clean

    def test_diff_metrics_reports_counter_deltas_only(self):
        base = {"counters": {"a": 1, "b": 2}, "gauges": {"g": 5}}
        new = {"counters": {"a": 1, "b": 3, "c": 1}, "gauges": {"g": 9}}
        deltas = diff_metrics(base, new)
        assert deltas == [
            {"counter": "b", "base": 2, "new": 3},
            {"counter": "c", "base": None, "new": 1},
        ]


class TestRenderSummary:
    def test_summary_renders_stages_edits_and_paths(self, tmp_path):
        trace = load_journal(_journal(tmp_path))
        text = render_summary(trace)
        assert "hls_compile" in text
        assert "evaluations by edit" in text
        assert "type_trans" in text
        assert "critical path (wall)" in text
        assert "critical path (sim)" in text

    def test_summary_notes_truncation(self, tmp_path):
        path = _journal(tmp_path)
        text = open(path).read()
        trunc = tmp_path / "trunc.jsonl"
        trunc.write_text(text[: text.rindex('"name"')])
        rendered = render_summary(load_journal(str(trunc)))
        assert "truncated" in rendered
