"""Metrics registry: counters, gauges, histograms, snapshot shape."""

from __future__ import annotations

from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry


def test_counters_accumulate_per_label_set():
    reg = MetricsRegistry()
    reg.inc("cache.lookups", tier="memory", outcome="hit")
    reg.inc("cache.lookups", tier="memory", outcome="hit")
    reg.inc("cache.lookups", tier="store", outcome="miss")
    reg.inc("cache.lookups", value=3.0, outcome="hit", tier="memory")
    assert reg.counter_value("cache.lookups", tier="memory", outcome="hit") == 5.0
    assert reg.counter_value("cache.lookups", tier="store", outcome="miss") == 1.0
    assert reg.counter_value("cache.lookups", tier="disk", outcome="hit") == 0.0
    assert len(reg.counters_named("cache.lookups")) == 2


def test_label_order_does_not_split_series():
    reg = MetricsRegistry()
    reg.inc("m", a="1", b="2")
    reg.inc("m", b="2", a="1")
    assert reg.counter_value("m", a="1", b="2") == 2.0


def test_gauge_holds_last_value():
    reg = MetricsRegistry()
    reg.set_gauge("fuzz.coverage_ratio", 0.4, kernel="k")
    reg.set_gauge("fuzz.coverage_ratio", 0.9, kernel="k")
    snap = reg.snapshot()
    assert snap["gauges"] == {"fuzz.coverage_ratio{kernel=k}": 0.9}


def test_histogram_buckets_and_stats():
    hist = Histogram(bounds=(1.0, 10.0))
    for value in (0.5, 5.0, 50.0):
        hist.observe(value)
    snap = hist.snapshot()
    assert snap["count"] == 3
    assert snap["sum"] == 55.5
    assert snap["min"] == 0.5 and snap["max"] == 50.0
    assert snap["mean"] == 18.5
    assert snap["buckets"] == {"1.0": 1, "10.0": 1, "+inf": 1}


def test_empty_histogram_snapshot_has_no_mean():
    snap = Histogram().snapshot()
    assert snap == {"count": 0, "sum": 0.0, "min": None, "max": None,
                    "mean": None, "buckets": {}}


def test_observe_uses_default_buckets():
    reg = MetricsRegistry()
    reg.observe("hls.compile.sim_seconds", 42.0)
    snap = reg.snapshot()["histograms"]["hls.compile.sim_seconds"]
    assert snap["count"] == 1
    assert any(float(b) >= 42.0 for b in snap["buckets"] if b != "+inf")
    assert len(DEFAULT_BUCKETS) > 5


def test_snapshot_is_deterministically_ordered():
    def build():
        reg = MetricsRegistry()
        reg.inc("b.metric")
        reg.inc("a.metric", tier="z")
        reg.inc("a.metric", tier="a")
        reg.set_gauge("g", 1.0)
        reg.observe("h", 2.0)
        return reg.snapshot()

    first, second = build(), build()
    assert first == second
    assert list(first["counters"]) == [
        "a.metric{tier=a}", "a.metric{tier=z}", "b.metric"
    ]
