"""Per-stage baselines and the ``repro trace check`` gate."""

from __future__ import annotations

import json

import pytest

from repro.hls.clock import ACT_HLS_COMPILE, SimulatedClock
from repro.obs import TraceRecorder
from repro.obs.analyze import load_journal
from repro.obs.baseline import (
    BASELINE_VERSION,
    baseline_from_trace,
    check_trace,
    load_baseline,
    render_check,
    write_baseline,
)
from repro.obs.export import write_journal


def _trace(tmp_path, name="run.jsonl", compiles=2, compile_seconds=540.0,
           extra_stage=None):
    rec = TraceRecorder()
    clock = SimulatedClock.recording()
    with rec.span("transpile", clock=clock):
        with rec.span("search", clock=clock):
            for _ in range(compiles):
                with rec.span("hls_compile", clock=clock):
                    clock.charge(ACT_HLS_COMPILE, compile_seconds)
        if extra_stage:
            with rec.span(extra_stage, clock=clock):
                clock.charge(ACT_HLS_COMPILE, 1.0)
    path = write_journal(rec, str(tmp_path / name))
    return load_journal(path)


class TestBaselineFile:
    def test_round_trip(self, tmp_path):
        trace = _trace(tmp_path)
        baseline = baseline_from_trace(trace, meta={"journal": "run.jsonl"})
        path = write_baseline(str(tmp_path / "base.json"), baseline)
        loaded = load_baseline(path)
        assert loaded == baseline
        assert loaded["version"] == BASELINE_VERSION
        assert loaded["stages"]["hls_compile"] == {
            "count": 2,
            "sim_s": pytest.approx(1080.0),
            "wall_us": pytest.approx(
                loaded["stages"]["hls_compile"]["wall_us"]
            ),
        }
        assert loaded["meta"]["journal"] == "run.jsonl"

    def test_stages_are_sorted_for_stable_diffs(self, tmp_path):
        baseline = baseline_from_trace(_trace(tmp_path))
        assert list(baseline["stages"]) == sorted(baseline["stages"])

    def test_load_rejects_non_baselines(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"stages": {}}))
        with pytest.raises(ValueError, match="missing version"):
            load_baseline(str(path))
        path.write_text(json.dumps(
            {"version": BASELINE_VERSION + 1, "stages": {}}
        ))
        with pytest.raises(ValueError, match="newer than this reader"):
            load_baseline(str(path))
        path.write_text(json.dumps({"version": 1}))
        with pytest.raises(ValueError, match="no stages"):
            load_baseline(str(path))


class TestCheckTrace:
    def test_identical_run_passes_at_zero_tolerance(self, tmp_path):
        baseline = baseline_from_trace(_trace(tmp_path, "a.jsonl"))
        trace = _trace(tmp_path, "b.jsonl")
        violations = check_trace(trace, baseline)
        assert violations == []
        assert "passed" in render_check(violations, "base.json")

    def test_extra_work_violates_count_and_sim(self, tmp_path):
        baseline = baseline_from_trace(_trace(tmp_path, "a.jsonl", compiles=2))
        trace = _trace(tmp_path, "b.jsonl", compiles=3)
        kinds = {(v["stage"], v["kind"])
                 for v in check_trace(trace, baseline)}
        assert ("hls_compile", "count") in kinds
        assert ("hls_compile", "sim_seconds") in kinds

    def test_missing_stage_is_a_violation(self, tmp_path):
        baseline = baseline_from_trace(
            _trace(tmp_path, "a.jsonl", extra_stage="final_difftest")
        )
        trace = _trace(tmp_path, "b.jsonl")
        violations = check_trace(trace, baseline)
        assert {"stage": "final_difftest", "kind": "missing",
                "base": 1, "new": 0, "limit": 0} in violations

    def test_new_stage_with_sim_cost_is_unbaselined(self, tmp_path):
        baseline = baseline_from_trace(_trace(tmp_path, "a.jsonl"))
        trace = _trace(tmp_path, "b.jsonl", extra_stage="final_difftest")
        kinds = {(v["stage"], v["kind"])
                 for v in check_trace(trace, baseline)}
        assert ("final_difftest", "unbaselined") in kinds
        # The extra simulated second also shows up in the root total.
        assert ("transpile", "sim_seconds") in kinds

    def test_global_tolerances_absorb_bounded_growth(self, tmp_path):
        baseline = baseline_from_trace(
            _trace(tmp_path, "a.jsonl", compiles=2, compile_seconds=500.0)
        )
        trace = _trace(tmp_path, "b.jsonl", compiles=3, compile_seconds=510.0)
        assert check_trace(trace, baseline) != []
        assert check_trace(
            trace, baseline, sim_tolerance=0.6, count_tolerance=1
        ) == []

    def test_per_stage_tolerances_override_the_flags(self, tmp_path):
        baseline = baseline_from_trace(_trace(tmp_path, "a.jsonl", compiles=2))
        # The extra compile propagates sim time into every ancestor, so
        # each touched stage gets its own pinned slack.
        baseline["tolerances"] = {
            "hls_compile": {"count": 1, "sim": 1.0},
            "search": {"sim": 1.0},
            "transpile": {"sim": 1.0},
        }
        trace = _trace(tmp_path, "b.jsonl", compiles=3)
        # The pinned per-stage slack wins over the strict defaults...
        assert check_trace(trace, baseline) == []
        # ...and applies only to its own stage: dropping one pin
        # reinstates the zero-tolerance default there.
        del baseline["tolerances"]["hls_compile"]
        kinds = {(v["stage"], v["kind"])
                 for v in check_trace(trace, baseline)}
        assert ("hls_compile", "count") in kinds
        assert ("search", "sim_seconds") not in kinds

    def test_wall_gated_only_with_a_tolerance(self, tmp_path):
        baseline = baseline_from_trace(_trace(tmp_path, "a.jsonl"))
        trace = _trace(tmp_path, "b.jsonl")
        assert check_trace(trace, baseline) == []
        violations = check_trace(trace, baseline, wall_tolerance=-0.999999)
        assert violations and all(v["kind"] == "wall" for v in violations)

    def test_render_check_names_the_regeneration_command(self, tmp_path):
        baseline = baseline_from_trace(_trace(tmp_path, "a.jsonl"))
        trace = _trace(tmp_path, "b.jsonl", compiles=3)
        text = render_check(check_trace(trace, baseline), "base.json")
        assert "FAILED" in text
        assert "--update" in text
