"""Logging wiring: NullHandler etiquette and the single CLI handler."""

from __future__ import annotations

import logging

import pytest

from repro.obs import logs
from repro.obs.logs import (
    LEVELS,
    ROOT_LOGGER,
    attach_null_handler,
    configure_logging,
)


@pytest.fixture()
def clean_root():
    """Detach whatever handlers/levels earlier tests left and restore
    the module-global CLI-handler slot afterwards."""
    root = logging.getLogger(ROOT_LOGGER)
    saved_handlers = list(root.handlers)
    saved_level = root.level
    saved_cli = logs._cli_handler
    root.handlers = []
    logs._cli_handler = None
    yield root
    root.handlers = saved_handlers
    root.setLevel(saved_level)
    logs._cli_handler = saved_cli


def test_attach_null_handler_is_idempotent(clean_root):
    attach_null_handler()
    attach_null_handler()
    nulls = [h for h in clean_root.handlers
             if isinstance(h, logging.NullHandler)]
    assert len(nulls) == 1


def test_configure_logging_defaults_to_warning(clean_root):
    root = configure_logging()
    assert root.level == logging.WARNING
    real = [h for h in clean_root.handlers
            if not isinstance(h, logging.NullHandler)]
    assert len(real) == 1
    assert real[0].level == logging.WARNING


def test_configure_logging_is_idempotent(clean_root):
    configure_logging("debug")
    configure_logging("info")
    real = [h for h in clean_root.handlers
            if not isinstance(h, logging.NullHandler)]
    assert len(real) == 1, "repeated calls must retune, not stack handlers"
    assert clean_root.level == logging.INFO


def test_quiet_wins_over_level(clean_root):
    configure_logging("debug", quiet=True)
    assert clean_root.level == logging.ERROR


def test_unknown_level_rejected(clean_root):
    with pytest.raises(ValueError, match="unknown log level"):
        configure_logging("loud")


def test_levels_cover_the_cli_choices():
    assert LEVELS == ("debug", "info", "warning", "error")
    for name in LEVELS:
        assert hasattr(logging, name.upper())


def test_module_loggers_descend_from_repro_root(clean_root, caplog):
    """A warning logged by any repro module propagates to the "repro"
    root (where the CLI handler sits), and nowhere by default."""
    log = logging.getLogger("repro.core.heterogen")
    attach_null_handler()
    with caplog.at_level(logging.WARNING, logger=ROOT_LOGGER):
        log.warning("kernel seed capture failed for host %r", "main")
    assert "kernel seed capture failed" in caplog.text
