"""Recorder behaviour: span parenting, clocks, subtraces, scoping."""

from __future__ import annotations

import pickle
import threading

from repro.hls.clock import ACT_HLS_COMPILE, SimulatedClock
from repro.obs import (
    NULL_RECORDER,
    NullRecorder,
    TraceRecorder,
    get_recorder,
    install_recorder,
    reset_recorder,
    scoped_recorder,
)
from repro.obs.recorder import SUBTRACE_TAG, EventRecord, SpanRecord


# ---------------------------------------------------------------------------
# Null recorder (the default, overhead-critical path)
# ---------------------------------------------------------------------------


def test_null_recorder_is_inert():
    rec = NullRecorder()
    assert rec.enabled is False
    with rec.span("anything", clock=object()) as span:
        rec.event("boom", level="error", detail="x")
        rec.metrics.inc("whatever", tier="memory")
        rec.metrics.observe("whatever", 1.0)
        rec.metrics.set_gauge("whatever", 1.0)
    assert span is rec.span("other")  # one shared no-op span instance
    assert rec.subtrace() is None
    assert rec.metrics.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {}
    }


def test_default_recorder_is_the_null_singleton(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    reset_recorder()
    try:
        assert get_recorder() is NULL_RECORDER
    finally:
        reset_recorder()


def test_env_value_activates_a_trace_recorder(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "1")
    reset_recorder()
    try:
        assert isinstance(get_recorder(), TraceRecorder)
    finally:
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        reset_recorder()


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------


def test_span_nesting_records_parent_links():
    rec = TraceRecorder()
    with rec.span("outer"):
        with rec.span("inner"):
            rec.event("note", hint="deep")
    spans = {s.name: s for s in rec.spans()}
    assert spans["outer"].parent == 0
    assert spans["inner"].parent == spans["outer"].sid
    (event,) = rec.events()
    assert event.parent == spans["inner"].sid
    assert event.args == {"hint": "deep"}
    # Children close (and append) before parents; exports sort by start.
    assert [s.name for s in rec.spans()] == ["inner", "outer"]


def test_span_samples_simulated_clock():
    rec = TraceRecorder()
    clock = SimulatedClock.recording()
    clock.charge(ACT_HLS_COMPILE, 5.0)
    with rec.span("compile", clock=clock):
        clock.charge(ACT_HLS_COMPILE, 37.5)
    (span,) = rec.spans()
    assert span.sim_ts == 5.0
    assert span.sim_dur == 37.5
    assert span.dur_us >= 0.0


def test_span_without_clock_has_null_sim_fields():
    rec = TraceRecorder()
    with rec.span("plain"):
        pass
    (span,) = rec.spans()
    assert span.sim_ts is None and span.sim_dur is None


def test_sibling_spans_share_a_parent():
    rec = TraceRecorder()
    with rec.span("root"):
        with rec.span("a"):
            pass
        with rec.span("b"):
            pass
    spans = {s.name: s for s in rec.spans()}
    assert spans["a"].parent == spans["root"].sid
    assert spans["b"].parent == spans["root"].sid


def test_record_cap_drops_and_counts():
    rec = TraceRecorder(max_records=2)
    for i in range(5):
        rec.event(f"e{i}")
    assert len(rec.records()) == 2
    assert rec.dropped == 3
    rec.clear()
    assert rec.records() == [] and rec.dropped == 0


def test_threads_parent_independently():
    rec = TraceRecorder()
    with rec.span("main-root"):
        done = threading.Event()

        def worker():
            with rec.span("thread-span"):
                pass
            done.set()

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert done.wait(1)
    spans = {s.name: s for s in rec.spans()}
    # The other thread has its own stack: no cross-thread parenting.
    assert spans["thread-span"].parent == 0
    assert spans["thread-span"].tid != spans["main-root"].tid


# ---------------------------------------------------------------------------
# Subtraces (the worker wire format)
# ---------------------------------------------------------------------------


def _make_subtrace():
    tracer = TraceRecorder()
    clock = SimulatedClock.recording()
    with tracer.span("hls_compile", clock=clock):
        clock.charge(ACT_HLS_COMPILE, 12.0)
        tracer.event("diag", code="SYNCHK 200-11")
    with tracer.span("difftest"):
        pass
    return tracer.subtrace()


def test_subtrace_is_picklable_and_tagged():
    sub = _make_subtrace()
    assert sub[0] == SUBTRACE_TAG
    assert isinstance(sub[1], int)  # producing pid
    restored = pickle.loads(pickle.dumps(sub))
    assert restored[0] == SUBTRACE_TAG
    assert len(restored) == len(sub)


def test_attach_subtrace_grafts_under_current_span():
    sub = _make_subtrace()
    rec = TraceRecorder()
    with rec.span("search.evaluate"):
        rec.attach_subtrace(sub)
    spans = {s.name: s for s in rec.spans()}
    evaluate = spans["search.evaluate"]
    for name in ("hls_compile", "difftest"):
        assert spans[name].parent == evaluate.sid
        assert spans[name].args["worker_pid"] == sub[1]
        assert spans[name].tid == sub[1]
    # Simulated measurements survive the graft untouched.
    assert spans["hls_compile"].sim_dur == 12.0
    (event,) = rec.events()
    assert event.name == "diag"
    assert event.parent == spans["hls_compile"].sid


def test_attach_subtrace_remaps_ids_fresh():
    sub = _make_subtrace()
    rec = TraceRecorder()
    with rec.span("consume-twice"):
        rec.attach_subtrace(sub)
        rec.attach_subtrace(sub)  # cache hit replays the same subtrace
    sids = [s.sid for s in rec.spans()]
    assert len(sids) == len(set(sids)), "grafted ids must never collide"


def test_attach_subtrace_merges_worker_metrics():
    tracer = TraceRecorder()
    tracer.metrics.inc("hls.compile.invocations")
    tracer.metrics.observe("hls.compile.sim_seconds", 42.0)
    tracer.metrics.set_gauge("g", 0.5)
    sub = tracer.subtrace()
    rec = TraceRecorder()
    rec.metrics.inc("hls.compile.invocations")
    rec.attach_subtrace(sub)
    rec.attach_subtrace(sub)
    assert rec.metrics.counter_value("hls.compile.invocations") == 3.0
    snap = rec.metrics.snapshot()
    assert snap["histograms"]["hls.compile.sim_seconds"]["count"] == 2
    assert snap["histograms"]["hls.compile.sim_seconds"]["sum"] == 84.0
    assert snap["gauges"] == {"g": 0.5}


def test_attach_subtrace_ignores_unknown_tag():
    rec = TraceRecorder()
    rec.attach_subtrace(("some-other-format/v9", 1234))
    rec.attach_subtrace(None)
    rec.attach_subtrace(())
    assert rec.records() == []


# ---------------------------------------------------------------------------
# Recorder scoping
# ---------------------------------------------------------------------------


def test_scoped_recorder_overrides_and_restores():
    outer = TraceRecorder()
    inner = TraceRecorder()
    previous = install_recorder(outer)
    try:
        assert get_recorder() is outer
        with scoped_recorder(inner):
            assert get_recorder() is inner
            with scoped_recorder(None):
                # A nested None override un-hides the global again.
                assert get_recorder() is outer
            assert get_recorder() is inner
        assert get_recorder() is outer
    finally:
        install_recorder(previous)


def test_scoped_recorder_is_thread_local():
    outer = TraceRecorder()
    inner = TraceRecorder()
    previous = install_recorder(outer)
    seen = {}
    try:
        with scoped_recorder(inner):
            def probe():
                seen["recorder"] = get_recorder()

            t = threading.Thread(target=probe)
            t.start()
            t.join()
    finally:
        install_recorder(previous)
    assert seen["recorder"] is outer, "override must not leak across threads"
