"""Streaming sinks: the subscriber API, the progress renderer, and the
follow-able JSONL tail."""

from __future__ import annotations

import io
import json

from repro.hls.clock import ACT_HLS_COMPILE, SimulatedClock
from repro.obs import NULL_RECORDER, TraceRecorder
from repro.obs.analyze import load_journal
from repro.obs.recorder import EventRecord, SpanRecord
from repro.obs.stream import (
    JsonlTailSink,
    PROGRESS_ENV,
    ProgressSink,
    STREAM_ENV,
    TraceSubscriber,
    attach_cli_sinks,
    progress_env_enabled,
    stream_env_path,
)


class _CollectingSink(TraceSubscriber):
    def __init__(self):
        self.spans = []
        self.events = []
        self.all = []
        self.closed = False

    def on_span(self, record):
        self.spans.append(record)
        self.all.append(record)

    def on_event(self, record):
        self.events.append(record)
        self.all.append(record)

    def close(self):
        self.closed = True


class _ExplodingSink(TraceSubscriber):
    def on_span(self, record):
        raise RuntimeError("sink bug")

    def on_event(self, record):
        raise RuntimeError("sink bug")


# ---------------------------------------------------------------------------
# Subscriber plumbing on the recorder
# ---------------------------------------------------------------------------


class TestSubscriberApi:
    def test_sinks_see_records_in_completion_order(self):
        rec = TraceRecorder()
        sink = _CollectingSink()
        rec.add_subscriber(sink)
        with rec.span("transpile"):
            with rec.span("fuzz"):
                rec.event("cache_hit", tier="memory")
        # Children close before parents; the event fired first of all.
        assert [s.name for s in sink.spans] == ["fuzz", "transpile"]
        assert [e.name for e in sink.events] == ["cache_hit"]
        assert isinstance(sink.spans[0], SpanRecord)
        assert isinstance(sink.events[0], EventRecord)

    def test_notification_matches_the_buffered_records(self):
        rec = TraceRecorder()
        sink = _CollectingSink()
        rec.add_subscriber(sink)
        with rec.span("transpile"):
            rec.event("warn")
        assert sink.all == list(rec.records())

    def test_sinks_still_notified_after_buffer_overflow(self):
        rec = TraceRecorder(max_records=1)
        sink = _CollectingSink()
        rec.add_subscriber(sink)
        with rec.span("a"):
            pass
        with rec.span("b"):
            pass
        assert rec.dropped == 1
        assert len(rec.records()) == 1
        # The stream is not bounded by the buffer: both spans streamed.
        assert [s.name for s in sink.spans] == ["a", "b"]

    def test_raising_sink_is_counted_not_propagated(self):
        rec = TraceRecorder()
        rec.add_subscriber(_ExplodingSink())
        survivor = _CollectingSink()
        rec.add_subscriber(survivor)
        with rec.span("transpile"):
            rec.event("warn")
        assert rec.subscriber_errors == 2
        # Other sinks and the pipeline are unaffected.
        assert [s.name for s in survivor.spans] == ["transpile"]
        assert len(rec.records()) == 2

    def test_remove_subscriber(self):
        rec = TraceRecorder()
        sink = _CollectingSink()
        rec.add_subscriber(sink)
        with rec.span("a"):
            pass
        rec.remove_subscriber(sink)
        with rec.span("b"):
            pass
        assert [s.name for s in sink.spans] == ["a"]

    def test_null_recorder_accepts_subscribers_as_noops(self):
        sink = _CollectingSink()
        NULL_RECORDER.add_subscriber(sink)
        with NULL_RECORDER.span("a"):
            pass
        NULL_RECORDER.remove_subscriber(sink)
        assert sink.spans == []

    def test_subscribers_see_grafted_worker_subtraces(self):
        worker = TraceRecorder()
        with worker.span("hls_compile"):
            pass
        subtrace = worker.subtrace()

        rec = TraceRecorder()
        sink = _CollectingSink()
        rec.add_subscriber(sink)
        with rec.span("search.evaluate"):
            rec.attach_subtrace(subtrace)
        assert [s.name for s in sink.spans] == ["hls_compile", "search.evaluate"]


# ---------------------------------------------------------------------------
# Environment knobs
# ---------------------------------------------------------------------------


class TestEnvKnobs:
    def test_progress_env(self, monkeypatch):
        monkeypatch.delenv(PROGRESS_ENV, raising=False)
        assert not progress_env_enabled()
        monkeypatch.setenv(PROGRESS_ENV, "1")
        assert progress_env_enabled()
        monkeypatch.setenv(PROGRESS_ENV, "0")
        assert not progress_env_enabled()

    def test_stream_env(self, monkeypatch):
        monkeypatch.delenv(STREAM_ENV, raising=False)
        assert stream_env_path() is None
        monkeypatch.setenv(STREAM_ENV, "/tmp/x.jsonl")
        assert stream_env_path() == "/tmp/x.jsonl"


# ---------------------------------------------------------------------------
# Progress renderer
# ---------------------------------------------------------------------------


def _progress(rec):
    # interval=0 so every record renders, non-TTY buffer to capture.
    buffer = io.StringIO()
    sink = ProgressSink(rec, stream=buffer, interval=0.0, plain_interval=0.0)
    rec.add_subscriber(sink)
    return sink, buffer


class TestProgressSink:
    def test_tracks_phase_iterations_and_budget(self):
        rec = TraceRecorder()
        sink, _buffer = _progress(rec)
        clock = SimulatedClock.recording()
        with rec.span("transpile"):
            with rec.span("fuzz", clock=clock):
                pass
            rec.event("search_started", kernel="k",
                      budget_seconds=10800.0, max_iterations=220)
            with rec.span("search", clock=clock):
                with rec.span("search.iteration", iteration=1, clock=clock):
                    with rec.span("search.evaluate", edit="type_trans",
                                  clock=clock):
                        clock.charge(ACT_HLS_COMPILE, 540.0)
                rec.event("repair_success", iteration=1)
        sink.close()
        assert sink.max_iterations == 220
        assert sink.budget_seconds == 10800.0
        assert sink.iterations == 1
        assert sink.evaluations == 1
        assert sink.sim_seconds == 540.0
        assert sink.best == "repaired@it1"
        assert sink.phase == "done"

        line = sink.render_line()
        assert "it=1/220" in line
        assert "cand=1" in line
        assert "sim=540s/10800s (5%)" in line
        assert "repaired@it1" in line

    def test_hit_rates_read_from_the_metrics_registry(self):
        rec = TraceRecorder()
        sink, _buffer = _progress(rec)
        rec.metrics.inc("cache.lookups", tier="memory", outcome="hit")
        rec.metrics.inc("cache.lookups", tier="memory", outcome="hit")
        rec.metrics.inc("cache.lookups", tier="memory", outcome="miss")
        rec.metrics.inc("cache.lookups", tier="store", outcome="miss")
        line = sink.render_line()
        assert "cache=67%" in line
        assert "store=0%" in line

    def test_non_tty_appends_lines(self):
        rec = TraceRecorder()
        sink, buffer = _progress(rec)
        with rec.span("fuzz"):
            pass
        sink.close()
        text = buffer.getvalue()
        assert "\r" not in text
        assert text.count("\n") >= 1
        assert "phase=" in text

    def test_renderer_never_mutates_pipeline_state(self):
        rec = TraceRecorder()
        _sink, _buffer = _progress(rec)
        with rec.span("transpile"):
            with rec.span("fuzz"):
                pass
        # Same record stream as an unsubscribed recorder.
        bare = TraceRecorder()
        with bare.span("transpile"):
            with bare.span("fuzz"):
                pass
        assert [r.name for r in rec.records()] == \
            [r.name for r in bare.records()]
        assert rec.subscriber_errors == 0


# ---------------------------------------------------------------------------
# JSONL tail sink
# ---------------------------------------------------------------------------


class TestJsonlTailSink:
    def test_tail_is_a_loadable_stream_journal(self, tmp_path):
        path = str(tmp_path / "tail.jsonl")
        rec = TraceRecorder()
        sink = JsonlTailSink(path)
        rec.add_subscriber(sink)
        clock = SimulatedClock.recording()
        with rec.span("transpile"):
            with rec.span("fuzz", clock=clock):
                clock.charge(ACT_HLS_COMPILE, 12.0)
            rec.event("warn", code="W1")
        sink.close()

        lines = [json.loads(l) for l in open(path)]
        assert lines[0]["type"] == "header"
        assert lines[0]["stream"] is True
        # Completion order: fuzz closes before the event fires, the
        # root closes last.
        assert [l["name"] for l in lines[1:]] == ["fuzz", "warn", "transpile"]

        trace = load_journal(path)
        assert {s["name"] for s in trace.spans.values()} == \
            {"transpile", "fuzz"}
        names = {trace.spans[s]["name"]: s for s in trace.spans}
        assert trace.spans[names["fuzz"]]["parent"] == names["transpile"]
        assert trace.spans[names["fuzz"]]["sim_dur_s"] == 12.0

    def test_tail_of_a_dead_producer_still_loads(self, tmp_path):
        # A producer that never closed its root span: the tail has the
        # children but no parent record.
        path = str(tmp_path / "tail.jsonl")
        rec = TraceRecorder()
        sink = JsonlTailSink(path)
        rec.add_subscriber(sink)
        span = rec.span("transpile")
        span.__enter__()
        with rec.span("fuzz"):
            pass
        sink.close()  # producer dies; "transpile" never closed

        trace = load_journal(path)
        assert [trace.spans[s]["name"] for s in trace.roots] == ["fuzz"]

    def test_writes_flush_per_record(self, tmp_path):
        path = str(tmp_path / "tail.jsonl")
        rec = TraceRecorder()
        sink = JsonlTailSink(path)
        rec.add_subscriber(sink)
        with rec.span("fuzz"):
            pass
        # Readable mid-run, before close().
        lines = open(path).read().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["name"] == "fuzz"
        sink.close()


class TestAttachCliSinks:
    def test_attaches_requested_sinks(self, tmp_path):
        rec = TraceRecorder()
        path = str(tmp_path / "s.jsonl")
        sinks = attach_cli_sinks(rec, progress=True, stream_out=path)
        assert len(sinks) == 2
        assert isinstance(sinks[0], ProgressSink)
        assert isinstance(sinks[1], JsonlTailSink)
        with rec.span("fuzz"):
            pass
        for sink in sinks:
            sink.close()
        assert len(open(path).read().splitlines()) == 2

    def test_nothing_requested_attaches_nothing(self):
        rec = TraceRecorder()
        assert attach_cli_sinks(rec) == []
