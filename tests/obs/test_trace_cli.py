"""End-to-end trace plumbing through the CLI: every subcommand's
journal round-trips into the analyzer, live sinks never change the
product output, and the ``repro trace`` verbs work on real journals."""

from __future__ import annotations

import contextlib
import io
import json
import os

import pytest

from repro.cli import main
from repro.obs.analyze import load_journal, stage_stats
from repro.obs.baseline import load_baseline

KERNEL = """
float smooth(float samples[8], float out[8]) {
    long double acc = 0.0;
    for (int i = 0; i < 8; i++) {
        long double x = samples[i];
        acc = acc + x;
        out[i] = (float)acc;
    }
    return (float)acc;
}
"""

#: (journal stem, argv tail, span names the journal must contain) — one
#: traced invocation per subcommand.
COMMANDS = [
    ("transpile", ["transpile", "{kernel}", "--kernel", "smooth",
                   "--fuzz-execs", "200", "--max-iterations", "50"],
     {"transpile", "fuzz", "bitwidth", "search",
      "search.iteration", "search.evaluate", "final_difftest"}),
    ("check", ["check", "{kernel}", "--top", "smooth"],
     {"check", "parse"}),
    ("fuzz", ["fuzz", "{kernel}", "--kernel", "smooth",
              "--fuzz-execs", "200"],
     {"fuzz", "parse"}),
    ("subjects", ["subjects", "--run", "P1", "--max-iterations", "25"],
     {"transpile", "fuzz", "search", "search.evaluate"}),
    ("study", ["study", "--posts", "100"],
     {"study", "study.generate", "study.analyze"}),
]


def _run(argv):
    """Invoke the CLI capturing stdout; returns (exit_code, stdout)."""
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = main(argv)
    return code, out.getvalue()


def _reset_process_state():
    """Reset in-process counters that leak across CLI invocations, so
    two runs in one test process produce identical output (what two
    separate ``python -m repro`` processes get for free)."""
    import itertools

    from repro.cfront import nodes as N
    from repro.hls.memo import clear_analysis_caches

    N._uid_counter = itertools.count(1)
    clear_analysis_caches()


@pytest.fixture(scope="module")
def journals(tmp_path_factory):
    """One finished journal per subcommand, keyed by stem."""
    root = tmp_path_factory.mktemp("journals")
    kernel = root / "kernel.c"
    kernel.write_text(KERNEL)
    paths = {}
    for stem, argv, _names in COMMANDS:
        trace_out = root / f"{stem}.trace.json"
        argv = [a.format(kernel=str(kernel)) for a in argv]
        _run(argv + ["--trace-out", str(trace_out)])
        paths[stem] = str(root / f"{stem}.trace.jsonl")
    return paths


class TestJournalRoundTrips:
    @pytest.mark.parametrize(
        "stem,argv,names", COMMANDS, ids=[c[0] for c in COMMANDS]
    )
    def test_subcommand_journal_loads_strict(self, journals, stem, argv,
                                             names):
        trace = load_journal(journals[stem], strict=True)
        assert not trace.truncated and trace.skipped_lines == 0
        stats = stage_stats(trace)
        assert names <= set(stats), (
            f"{stem} journal is missing spans: {names - set(stats)}"
        )
        assert trace.roots, f"{stem} journal has no root span"

    def test_truncated_cli_journal_still_loads(self, journals, tmp_path):
        text = open(journals["transpile"]).read()
        cut = tmp_path / "cut.jsonl"
        cut.write_text(text[: int(len(text) * 0.9)])
        trace = load_journal(str(cut))
        assert trace.spans
        assert stage_stats(trace)


class TestSinkDeterminism:
    def test_json_output_byte_identical_with_sinks_on(self, tmp_path,
                                                      monkeypatch, capsys):
        for var in ("REPRO_TRACE", "REPRO_PROGRESS", "REPRO_STREAM"):
            monkeypatch.delenv(var, raising=False)
        kernel = tmp_path / "kernel.c"
        kernel.write_text(KERNEL)
        argv = ["transpile", str(kernel), "--kernel", "smooth",
                "--fuzz-execs", "200", "--max-iterations", "50", "--json"]

        _reset_process_state()
        code = main(argv)
        plain = capsys.readouterr()
        assert code == 0

        _reset_process_state()
        stream = tmp_path / "tail.jsonl"
        code = main(argv + [
            "--progress",
            "--stream-out", str(stream),
            "--trace-out", str(tmp_path / "run.trace.json"),
            "--metrics-out", str(tmp_path / "run.metrics.json"),
        ])
        sunk = capsys.readouterr()
        assert code == 0

        assert sunk.out == plain.out  # byte-identical product output
        assert "[repro" in sunk.err   # progress went to stderr only
        json.loads(plain.out)

        # The live tail holds the same span multiset as the batch
        # journal — only the ordering discipline differs.
        batch = load_journal(str(tmp_path / "run.trace.jsonl"), strict=True)
        tail = load_journal(str(stream))
        assert sorted(s["name"] for s in tail.spans.values()) == \
            sorted(s["name"] for s in batch.spans.values())

    def test_progress_env_knob_enables_the_sink(self, tmp_path,
                                                monkeypatch, capsys):
        monkeypatch.setenv("REPRO_PROGRESS", "1")
        kernel = tmp_path / "kernel.c"
        kernel.write_text(KERNEL)
        main(["check", str(kernel), "--top", "smooth"])
        assert "[repro" in capsys.readouterr().err


class TestTraceVerbs:
    def test_summary(self, journals, capsys):
        assert main(["trace", "summary", journals["transpile"]]) == 0
        out = capsys.readouterr().out
        assert "search.evaluate" in out
        assert "critical path (wall)" in out

    def test_summary_json(self, journals, capsys):
        assert main(["trace", "summary", journals["transpile"],
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        stages = {s["name"] for s in payload["stages"]}
        assert "search" in stages

    def test_flame_folded(self, journals, capsys):
        assert main(["trace", "flame", journals["transpile"],
                     "--clock", "sim"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines and all(" " in l for l in lines)
        assert any(l.startswith("transpile;search") for l in lines)

    def test_flame_speedscope_file(self, journals, tmp_path, capsys):
        out_path = tmp_path / "fg.speedscope.json"
        assert main(["trace", "flame", journals["transpile"],
                     "--format", "speedscope", "-o", str(out_path)]) == 0
        doc = json.load(open(out_path))
        assert doc["shared"]["frames"]
        assert len(doc["profiles"]) == 2

    def test_diff_of_a_journal_with_itself_is_clean(self, journals,
                                                    capsys):
        code = main(["trace", "diff", journals["transpile"],
                     journals["transpile"]])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_diff_flags_extra_work_as_regressions(self, journals, capsys):
        # The full transpile does strictly more than fuzz-only.
        code = main(["trace", "diff", journals["fuzz"],
                     journals["transpile"]])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_check_update_then_check_round_trip(self, journals, tmp_path,
                                                capsys):
        base = tmp_path / "baseline.json"
        assert main(["trace", "check", journals["transpile"],
                     "--baseline", str(base), "--update"]) == 0
        baseline = load_baseline(str(base))
        assert "search.evaluate" in baseline["stages"]
        assert main(["trace", "check", journals["transpile"],
                     "--baseline", str(base)]) == 0
        assert "passed" in capsys.readouterr().out
        # A run doing more work fails the gate.
        assert main(["trace", "check", journals["subjects"],
                     "--baseline", str(base)]) == 1

class TestBrokenPipe:
    def test_piped_trace_output_exits_141_without_traceback(self, journals):
        # ``repro trace summary run.jsonl | head`` must not dump a
        # BrokenPipeError traceback: the __main__ shim maps EPIPE to the
        # conventional SIGPIPE exit status.  A pre-closed read end makes
        # the first stdout flush fail deterministically.
        import subprocess
        import sys

        read_end, write_end = os.pipe()
        os.close(read_end)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"),
                        os.path.join(os.path.dirname(__file__),
                                     os.pardir, os.pardir, "src"))
            if p)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "trace", "summary",
             journals["transpile"]],
            stdout=write_end, stderr=subprocess.PIPE, env=env)
        os.close(write_end)
        assert proc.returncode == 141
        assert b"Traceback" not in proc.stderr
