"""Exporters: journal round-trip, span-tree validation, Chrome trace,
metrics snapshot, manifest, path conventions."""

from __future__ import annotations

import json

from repro.hls.clock import ACT_STYLE_CHECK, SimulatedClock
from repro.obs import TraceRecorder
from repro.obs.export import (
    build_span_tree,
    chrome_trace,
    journal_lines,
    read_journal,
    run_manifest,
    trace_paths,
    write_chrome_trace,
    write_journal,
    write_manifest,
    write_metrics,
)
from repro.obs.schema import validate_journal, validate_record


def _traced_run():
    """A small but structurally complete trace: nesting, clock, event,
    metrics — enough to exercise every export path."""
    rec = TraceRecorder()
    clock = SimulatedClock.recording()
    with rec.span("transpile", kernel="k"):
        with rec.span("fuzz", clock=clock):
            clock.charge(ACT_STYLE_CHECK, 20.0)
        with rec.span("search", clock=clock):
            with rec.span("search.evaluate", edit="type_trans"):
                rec.event("cache_hit", tier="memory")
        rec.metrics.inc("edit.attempts", edit="type_trans", family="types")
        rec.metrics.observe("hls.compile.sim_seconds", 37.0)
        rec.metrics.set_gauge("fuzz.coverage_ratio", 0.75, kernel="k")
    return rec


# ---------------------------------------------------------------------------
# Journal round-trip
# ---------------------------------------------------------------------------


def test_journal_round_trip_preserves_the_span_tree(tmp_path):
    rec = _traced_run()
    path = write_journal(rec, str(tmp_path / "run.jsonl"))

    assert validate_journal(path) == []
    records = read_journal(path)
    header, body = records[0], records[1:]
    assert header["type"] == "header"
    assert header["records"] == len(body)
    assert header["dropped"] == 0
    for obj in records:
        assert validate_record(obj) == []

    spans, children = build_span_tree(body)
    by_name = {obj["name"]: obj for obj in spans.values()}
    root = by_name["transpile"]
    assert root["parent"] == 0
    assert by_name["fuzz"]["parent"] == root["id"]
    assert by_name["search"]["parent"] == root["id"]
    assert by_name["search.evaluate"]["parent"] == by_name["search"]["id"]
    assert sorted(children[root["id"]]) == sorted(
        [by_name["fuzz"]["id"], by_name["search"]["id"]]
    )
    for obj in spans.values():
        assert obj["dur_us"] >= 0.0
    assert by_name["fuzz"]["sim_dur_s"] == 20.0
    event = next(obj for obj in body if obj["type"] == "event")
    assert event["name"] == "cache_hit"
    assert event["parent"] == by_name["search.evaluate"]["id"]


def test_journal_body_is_sorted_by_start_time():
    rec = _traced_run()
    body = journal_lines(rec)[1:]
    keys = [(obj["ts_us"], obj["id"]) for obj in body]
    assert keys == sorted(keys)


def test_build_span_tree_rejects_malformed_forests():
    import pytest

    ok = {"type": "span", "id": 1, "parent": 0, "name": "a", "cat": "c",
          "ts_us": 0.0, "dur_us": 1.0, "tid": 1, "args": {}}
    with pytest.raises(ValueError, match="duplicate"):
        build_span_tree([ok, dict(ok)])
    with pytest.raises(ValueError, match="unknown parent"):
        build_span_tree([dict(ok, parent=99)])
    with pytest.raises(ValueError, match="negative duration"):
        build_span_tree([dict(ok, dur_us=-1.0)])
    with pytest.raises(ValueError, match="cycle"):
        build_span_tree([
            dict(ok, id=1, parent=2),
            dict(ok, id=2, parent=1),
        ])
    with pytest.raises(ValueError, match="unknown parent"):
        build_span_tree([
            ok,
            {"type": "event", "id": 5, "parent": 77, "name": "e",
             "ts_us": 0.0, "tid": 1, "level": "info", "args": {}},
        ])


# ---------------------------------------------------------------------------
# Chrome trace
# ---------------------------------------------------------------------------


def test_chrome_trace_shape(tmp_path):
    rec = _traced_run()
    doc = chrome_trace(rec)
    events = doc["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    meta = [e for e in events if e["ph"] == "M"]
    assert {e["name"] for e in complete} == {
        "transpile", "fuzz", "search", "search.evaluate"
    }
    assert [e["name"] for e in instants] == ["cache_hit"]
    assert meta and all(e["name"] == "thread_name" for e in meta)
    fuzz = next(e for e in complete if e["name"] == "fuzz")
    assert fuzz["args"]["sim_dur_s"] == 20.0

    path = write_chrome_trace(rec, str(tmp_path / "run.trace.json"))
    with open(path) as handle:
        assert json.load(handle) == doc


# ---------------------------------------------------------------------------
# Metrics + manifest
# ---------------------------------------------------------------------------


def test_write_metrics_snapshot(tmp_path):
    rec = _traced_run()
    path = write_metrics(rec, str(tmp_path / "m.json"),
                         extra={"subject": "P1"})
    with open(path) as handle:
        payload = json.load(handle)
    assert payload["counters"] == {
        "edit.attempts{edit=type_trans,family=types}": 1.0
    }
    assert payload["gauges"] == {"fuzz.coverage_ratio{kernel=k}": 0.75}
    assert payload["histograms"]["hls.compile.sim_seconds"]["count"] == 1
    assert payload["summary"] == {"subject": "P1"}


def test_run_manifest_identity_fields(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR", "thread")
    manifest = run_manifest(
        command=["subjects", "--run", "P1"],
        config={"seed": 2022},
        subject="P1",
    )
    assert manifest["subject"] == "P1"
    assert manifest["command"] == ["subjects", "--run", "P1"]
    assert manifest["config"] == {"seed": 2022}
    assert manifest["toolchain_salt"]
    assert manifest["env"]["REPRO_EXECUTOR"] == "thread"

    path = write_manifest(str(tmp_path / "run.manifest.json"),
                          command=["x"], subject="P3")
    with open(path) as handle:
        assert json.load(handle)["subject"] == "P3"


def test_trace_paths_conventions():
    assert trace_paths("out/run.trace.json") == {
        "trace": "out/run.trace.json",
        "journal": "out/run.trace.jsonl",
        "manifest": "out/run.trace.manifest.json",
    }
    assert trace_paths("plain") == {
        "trace": "plain",
        "journal": "plain.jsonl",
        "manifest": "plain.manifest.json",
    }


def test_exporters_create_parent_directories(tmp_path):
    rec = _traced_run()
    nested = tmp_path / "a" / "b" / "run.jsonl"
    write_journal(rec, str(nested))
    assert nested.exists()
