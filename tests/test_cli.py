"""CLI tests (argument parsing + each subcommand end to end)."""

import json

import pytest

from repro.cli import _parse_host_args, build_parser, main, result_to_dict

KERNEL = """
float smooth(float samples[8], float out[8]) {
    long double acc = 0.0;
    for (int i = 0; i < 8; i++) {
        long double x = samples[i];
        acc = acc + x;
        out[i] = (float)acc;
    }
    return (float)acc;
}
"""


@pytest.fixture
def kernel_file(tmp_path):
    path = tmp_path / "kernel.c"
    path.write_text(KERNEL)
    return str(path)


class TestParsing:
    def test_host_args(self):
        assert _parse_host_args("") == []
        assert _parse_host_args("1,2,3") == [1, 2, 3]
        assert _parse_host_args("1, 2.5, 0x10") == [1, 2.5, 16]

    def test_parser_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_transpile_requires_kernel(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["transpile", "f.c"])


class TestCheck:
    def test_broken_kernel_exits_nonzero(self, kernel_file, capsys):
        code = main(["check", kernel_file, "--top", "smooth"])
        assert code == 1
        out = capsys.readouterr().out
        assert "long double" in out

    def test_json_output(self, kernel_file, capsys):
        main(["check", kernel_file, "--top", "smooth", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["type"] == "Unsupported Data Types"

    def test_clean_kernel_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.c"
        path.write_text("int kernel(int a[4]) { return a[0]; }")
        assert main(["check", str(path), "--top", "kernel"]) == 0
        assert "synthesizable" in capsys.readouterr().out


class TestFuzz:
    def test_fuzz_reports_coverage(self, kernel_file, capsys):
        code = main([
            "fuzz", kernel_file, "--kernel", "smooth", "--fuzz-execs", "200",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "branch_coverage" in out

    def test_fuzz_json_includes_corpus(self, kernel_file, capsys):
        main([
            "fuzz", kernel_file, "--kernel", "smooth",
            "--fuzz-execs", "200", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert payload["corpus"]
        assert payload["executions"] > 0


class TestTranspile:
    def test_end_to_end(self, kernel_file, capsys):
        code = main([
            "transpile", kernel_file, "--kernel", "smooth",
            "--fuzz-execs", "200", "--max-iterations", "50",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "HLS compatible   : yes" in out
        assert "fpga_float<8,71>" in out

    def test_diff_mode(self, kernel_file, capsys):
        main([
            "transpile", kernel_file, "--kernel", "smooth",
            "--fuzz-execs", "200", "--max-iterations", "50", "--diff",
        ])
        out = capsys.readouterr().out
        assert "---" in out and "+++" in out
        assert "-    long double acc = 0.0;" in out

    def test_json_payload_complete(self, kernel_file, capsys):
        main([
            "transpile", kernel_file, "--kernel", "smooth",
            "--fuzz-execs", "200", "--max-iterations", "50", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert payload["hls_compatible"] is True
        assert payload["behavior_preserved"] is True
        assert payload["applied_edits"]
        assert "final_source" in payload


class TestSubjects:
    def test_list_subjects(self, capsys):
        assert main(["subjects"]) == 0
        out = capsys.readouterr().out
        assert "P1" in out and "P10" in out

    def test_list_subjects_json(self, capsys):
        main(["subjects", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 10


class TestStudy:
    def test_study_render(self, capsys):
        assert main(["study", "--posts", "100"]) == 0
        out = capsys.readouterr().out
        assert "Unsupported Data Types" in out

    def test_study_json(self, capsys):
        main(["study", "--posts", "100", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] == 100
        assert payload["accuracy"] > 0.9


class TestWorkersValidation:
    def test_type_accepts_positive_integers(self):
        from repro.cli import _workers_count
        assert _workers_count("1") == 1
        assert _workers_count("8") == 8

    def test_type_rejects_non_integers(self):
        import argparse
        from repro.cli import _workers_count
        with pytest.raises(argparse.ArgumentTypeError, match="integer"):
            _workers_count("two")
        with pytest.raises(argparse.ArgumentTypeError, match="integer"):
            _workers_count("1.5")

    def test_type_rejects_zero_and_negative(self):
        import argparse
        from repro.cli import _workers_count
        with pytest.raises(argparse.ArgumentTypeError, match=">= 1"):
            _workers_count("0")
        with pytest.raises(argparse.ArgumentTypeError, match=">= 1"):
            _workers_count("-3")

    def test_parser_exits_on_bad_workers(self, capsys):
        parser = build_parser()
        for bad in ("0", "-1", "x"):
            with pytest.raises(SystemExit):
                parser.parse_args(
                    ["transpile", "f.c", "--kernel", "k", "--workers", bad]
                )
        capsys.readouterr()  # swallow argparse's stderr usage text


class TestSynthFlags:
    def test_default_is_unset(self):
        args = build_parser().parse_args(
            ["transpile", "f.c", "--kernel", "k"]
        )
        assert args.synth is None  # falls through to $REPRO_SYNTH

    def test_synth_and_no_synth(self):
        parser = build_parser()
        on = parser.parse_args(
            ["transpile", "f.c", "--kernel", "k", "--synth"]
        )
        off = parser.parse_args(
            ["transpile", "f.c", "--kernel", "k", "--no-synth"]
        )
        assert on.synth is True
        assert off.synth is False
