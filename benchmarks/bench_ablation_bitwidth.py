"""Extra ablation (beyond the paper's figures): bitwidth finitization.

§4 argues that profile-driven bitwidth estimation saves on-chip
resources and improves frequency/parallelism.  This ablation quantifies
the model's version of that: for the integer-heavy subjects, compare the
scheduled latency and resource usage of the original kernel against the
finitized initial version (``P_broken`` with ``fpga_int``/``fpga_uint``
declarations), everything else equal.
"""

import pytest

from repro.core import generate_initial_version
from repro.fuzz import FuzzConfig, fuzz_kernel, get_kernel_seed
from repro.hls import estimate
from repro.subjects import get_subject

from _shared import SEED, write_table

#: Integer-dominated kernels where narrowing has datapath effects.
SUBJECT_IDS = ("P6", "P7", "P10")


def run_ablation():
    rows = []
    for subject_id in SUBJECT_IDS:
        subject = get_subject(subject_id)
        unit = subject.parse()
        seeds = get_kernel_seed(
            unit, subject.host, subject.kernel, list(subject.host_args)
        )
        suite = fuzz_kernel(
            unit, subject.kernel,
            FuzzConfig(max_execs=600, plateau_execs=300, seed=SEED),
            seeds=seeds,
        ).suite(40)
        finitized, plan, _profile = generate_initial_version(
            unit, subject.kernel, suite
        )
        config = subject.solution.with_top(subject.kernel)
        before = estimate(unit, config)
        after = estimate(finitized, config)
        rows.append((subject, len(plan), before, after))
    return rows


def render(rows):
    header = (
        f"{'ID':4} {'narrowed':>9} {'LUTs before':>12} {'LUTs after':>11} "
        f"{'cycles before':>14} {'cycles after':>13}"
    )
    lines = ["Ablation — profile-driven bitwidth finitization (§4)",
             header, "-" * len(header)]
    for subject, narrowed, before, after in rows:
        lines.append(
            f"{subject.id:4} {narrowed:9} {before.resources.luts:12} "
            f"{after.resources.luts:11} {before.cycles:14.0f} "
            f"{after.cycles:13.0f}"
        )
    return "\n".join(lines)


def test_ablation_bitwidth(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    write_table("ablation_bitwidth.txt", render(rows))

    for subject, narrowed, before, after in rows:
        assert narrowed > 0, subject.id
        # Finitization never costs resources or cycles in the model...
        assert after.resources.luts <= before.resources.luts, subject.id
        assert after.cycles <= before.cycles, subject.id
    # ...and strictly saves somewhere.
    assert any(
        after.resources.luts < before.resources.luts
        for _s, _n, before, after in rows
    )
