"""Table 4 — Generated tests.

Per subject: number of generated tests, simulated fuzzing time, branch
coverage — against the size and coverage of the pre-existing suite.

Paper's shape: generated suites reach (near-)full coverage everywhere;
pre-existing suites exist for half the subjects and cover far less.
"""

import pytest

from repro.fuzz import FuzzConfig, coverage_of_suite, fuzz_kernel, get_kernel_seed
from repro.subjects import all_subjects

from _shared import SEED, write_table


def run_table4():
    rows = []
    for subject in all_subjects():
        unit = subject.parse()
        seeds = None
        if subject.host:
            seeds = get_kernel_seed(
                unit, subject.host, subject.kernel, list(subject.host_args)
            )
        report = fuzz_kernel(
            unit,
            subject.kernel,
            FuzzConfig(max_execs=2500, plateau_execs=600, seed=SEED),
            seeds=seeds,
        )
        existing = subject.existing_test_list()
        existing_cov = (
            coverage_of_suite(unit, subject.kernel, existing)
            if existing
            else None
        )
        rows.append((subject, report, len(existing), existing_cov))
    return rows


def render(rows):
    header = (
        f"{'ID':4} {'#Tests':>7} {'Time(min)':>10} {'Cov':>6}   "
        f"{'#Exist':>7} {'ExistCov':>9}"
    )
    lines = ["Table 4 — generated tests vs pre-existing suites", header,
             "-" * len(header)]
    for subject, report, n_existing, existing_cov in rows:
        exist_n = str(n_existing) if n_existing else "N/A"
        exist_cov = f"{existing_cov:8.0%}" if existing_cov is not None else "     N/A"
        lines.append(
            f"{subject.id:4} {report.tests_generated:7} "
            f"{report.fuzz_minutes:10.1f} {report.coverage_ratio:6.0%}   "
            f"{exist_n:>7} {exist_cov}"
        )
    mean_tests = sum(r.tests_generated for _s, r, _n, _c in rows) / len(rows)
    lines.append("")
    lines.append(
        f"mean generated tests: {mean_tests:.0f} (paper: 2,437)   "
        "paper mean coverage: 97% generated vs 36% existing"
    )
    return "\n".join(lines)


def test_table4(benchmark):
    rows = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    write_table("table4_testgen.txt", render(rows))

    for subject, report, _n, existing_cov in rows:
        assert report.tests_generated > 10, subject.id
        assert report.coverage_ratio >= 0.7, subject.id
        if existing_cov is not None:
            # Generated tests always at least match the shipped suite.
            assert report.coverage_ratio >= existing_cov, subject.id
    # Most subjects reach full coverage, as in the paper.
    full = sum(1 for _s, r, _n, _c in rows if r.coverage_ratio == 1.0)
    assert full >= 7
    # Where suites exist, the generated ones strictly beat at least one.
    beaten = [
        (s.id) for s, r, _n, cov in rows
        if cov is not None and r.coverage_ratio > cov
    ]
    assert beaten
