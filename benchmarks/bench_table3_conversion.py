"""Table 3 — Subjects and overall results.

For each of P1–P10: did HeteroGen produce an HLS-compatible version with
identical test behaviour, and did the converted version outperform the
CPU original?

Paper's shape: 10/10 HLS-compatible, 9/10 faster (P1, loop-free, is the
single ✗).
"""

import pytest

from repro.subjects import all_subjects

from _shared import subject_ids, transpile, write_table


def run_table3():
    rows = []
    for subject in all_subjects():
        result = transpile(subject.id, "HeteroGen")
        rows.append((subject, result))
    return rows


def render(rows):
    header = (
        f"{'ID':4} {'Subject':24} {'Compat':7} {'Behaves':8} "
        f"{'Faster?':8} {'Speedup':8} {'Edits':6} {'Repair(min)':>11} "
        f"{'Cache':>6}"
    )
    lines = ["Table 3 — subjects and overall results", header, "-" * len(header)]
    for subject, result in rows:
        stats = result.search_result.stats
        lines.append(
            f"{subject.id:4} {subject.name:24} "
            f"{'yes' if result.hls_compatible else 'NO':7} "
            f"{'yes' if result.behavior_preserved else 'NO':8} "
            f"{'yes' if result.improved_performance else 'no':8} "
            f"{result.speedup:7.2f}x {len(result.applied_edits):6} "
            f"{result.search_result.repair_minutes:11.1f} "
            f"{stats.cache_hit_ratio:6.0%}"
        )
    compat = sum(1 for _s, r in rows if r.hls_compatible and r.behavior_preserved)
    faster = sum(1 for _s, r in rows if r.improved_performance)
    speedups = [r.speedup for _s, r in rows if r.improved_performance]
    mean = sum(speedups) / len(speedups) if speedups else 0.0
    attempts = sum(r.search_result.stats.attempts for _s, r in rows)
    hits = sum(r.search_result.stats.cache_hits for _s, r in rows)
    lines.append("")
    lines.append(
        f"compatible+behaving: {compat}/10 (paper: 10/10)   "
        f"faster: {faster}/10 (paper: 9/10)   "
        f"mean speedup of improved: {mean:.2f}x (paper: 1.63x)"
    )
    lines.append(
        f"eval-cache hits: {hits}/{attempts} candidate evaluations "
        f"({hits / attempts if attempts else 0.0:.0%}) answered without "
        f"re-running the toolchain"
    )
    stage_totals = {}
    stage_counts = {}
    for _s, result in rows:
        clock = result.search_result.clock
        for activity, seconds in clock.by_activity.items():
            stage_totals[activity] = stage_totals.get(activity, 0.0) + seconds
            stage_counts[activity] = (
                stage_counts.get(activity, 0) + clock.counts.get(activity, 0)
            )
    total = sum(stage_totals.values())
    lines.append("")
    lines.append("simulated time by stage (all subjects):")
    for activity in sorted(stage_totals, key=lambda a: (-stage_totals[a], a)):
        share = stage_totals[activity] / total if total else 0.0
        lines.append(
            f"  {activity:<15}: {stage_totals[activity] / 60.0:9.1f} min "
            f"({share:5.1%}, {stage_counts[activity]} charges)"
        )
    return "\n".join(lines)


def test_table3(benchmark):
    rows = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    text = render(rows)
    write_table("table3_conversion.txt", text)

    # Shape assertions (the paper's headline results):
    for subject, result in rows:
        assert result.hls_compatible, f"{subject.id} not HLS compatible"
        assert result.behavior_preserved, f"{subject.id} diverges"
        if subject.expect_perf_improvement:
            assert result.improved_performance, f"{subject.id} not faster"
    p1 = next(r for s, r in rows if s.id == "P1")
    assert not p1.improved_performance  # the single ✗ of Table 3
