"""Observability overhead — tracing must be free when off, cheap when on.

Two measurements, emitted into ``benchmarks/out/BENCH_obs.json``:

1. **micro null-hook cost** — the per-call price of an instrumentation
   site when tracing is disabled: one ``get_recorder()`` lookup plus one
   no-op span enter/exit (or metric increment) on the
   :class:`~repro.obs.recorder.NullRecorder`.  Multiplied by the number
   of hook executions a real run performs (counted from a traced run of
   the same workload), this extrapolates the *total* disabled-mode
   overhead, which the ≤2 % budget is asserted against.  The
   extrapolation is deliberately pessimistic: it charges every hook the
   full micro cost on top of a wall time that already includes them.
2. **macro off-vs-on sweep** — median wall time of a full transpile with
   the default :class:`NullRecorder` against the same run with a live
   :class:`~repro.obs.recorder.TraceRecorder`, reporting what switching
   tracing *on* costs (informational: buffering spans is allowed to show
   up; determinism, not speed, is the enabled-mode contract).
3. **subscriber overhead** — the traced run again, with the live
   streaming sinks attached (:class:`~repro.obs.stream.ProgressSink`
   rendering to a non-TTY buffer plus a
   :class:`~repro.obs.stream.JsonlTailSink`); the progress sink must
   cost at most ``SUBSCRIBER_OVERHEAD_BUDGET`` over tracing-only, so
   ``--progress`` is safe to leave on by default.
"""

from __future__ import annotations

import io
import itertools
import statistics
import time

from repro.cfront import nodes as N
from repro.hls.memo import clear_analysis_caches
from repro.obs import NULL_RECORDER, TraceRecorder, get_recorder, scoped_recorder
from repro.obs.stream import JsonlTailSink, ProgressSink
from repro.subjects import get_subject

from _shared import write_bench_json, write_table

#: Workload: one mid-size subject at benchmark-quick settings.
SUBJECT_ID = "P3"

#: Macro rounds per mode; the reported time is the median.
ROUNDS = 5

#: Micro-loop iterations for the per-hook cost.
MICRO_ITERS = 200_000

#: The hard budget: instrumentation with tracing disabled may cost at
#: most this fraction of the untraced wall time.
DISABLED_OVERHEAD_BUDGET = 0.02

#: The live progress sink may cost at most this fraction of the
#: tracing-only wall time (the tail sink does per-record file I/O and is
#: reported informationally, not gated).
SUBSCRIBER_OVERHEAD_BUDGET = 0.02


def _quick_config():
    from repro.baselines import default_config

    return default_config(
        budget_seconds=2400.0,
        max_iterations=60,
        fuzz_execs=200,
        workers=1,
    )


def _run_once(recorder):
    """One full transpile of the workload under *recorder*."""
    from repro.baselines.variants import make_heterogen

    N._uid_counter = itertools.count(1)
    clear_analysis_caches()
    subject = get_subject(SUBJECT_ID)
    with scoped_recorder(recorder):
        start = time.perf_counter()
        result = make_heterogen(_quick_config()).transpile(
            subject.source,
            kernel_name=subject.kernel,
            solution=subject.solution,
            host_name=subject.host,
            host_args=list(subject.host_args),
            tests=subject.existing_test_list() or None,
            subject_name=subject.id,
        )
        elapsed = time.perf_counter() - start
    assert result.search_result.best is not None
    return elapsed, result


def run_macro(tmp_path):
    """Median wall time per mode, interleaved (off, on, live, off, on,
    live, ...) so host drift biases no side."""
    off_times, on_times, live_times, tail_times = [], [], [], []
    recorded = None
    for round_no in range(ROUNDS):
        off, _result = _run_once(NULL_RECORDER)
        off_times.append(off)
        recorder = TraceRecorder()
        on, _result = _run_once(recorder)
        on_times.append(on)
        recorded = recorder
        # Progress sink only (the ≤2% gate): renders to an in-memory
        # non-TTY buffer, so what is measured is the sink's own work.
        recorder = TraceRecorder()
        progress = ProgressSink(recorder, stream=io.StringIO())
        recorder.add_subscriber(progress)
        live, _result = _run_once(recorder)
        progress.close()
        live_times.append(live)
        # Both sinks (informational): adds the tail sink's per-record
        # write+flush to a real file.
        recorder = TraceRecorder()
        progress = ProgressSink(recorder, stream=io.StringIO())
        tail = JsonlTailSink(str(tmp_path / f"tail-{round_no}.jsonl"))
        recorder.add_subscriber(progress)
        recorder.add_subscriber(tail)
        both, _result = _run_once(recorder)
        progress.close()
        tail.close()
        tail_times.append(both)
    return off_times, on_times, live_times, tail_times, recorded


def run_micro():
    """Nanoseconds per disabled instrumentation hook."""

    def timed(fn):
        start = time.perf_counter()
        for _ in range(MICRO_ITERS):
            fn()
        return (time.perf_counter() - start) / MICRO_ITERS * 1e9

    def span_hook():
        rec = get_recorder()
        if rec.enabled:  # the guard every hot call site uses
            with rec.span("bench"):
                pass

    def metric_hook():
        rec = get_recorder()
        if rec.enabled:
            rec.metrics.inc("bench")

    def unguarded_span_hook():
        with get_recorder().span("bench"):
            pass

    return {
        "span_guarded_ns": round(timed(span_hook), 1),
        "metric_guarded_ns": round(timed(metric_hook), 1),
        "span_unguarded_ns": round(timed(unguarded_span_hook), 1),
    }


def test_obs_overhead(benchmark, tmp_path):
    off_times, on_times, live_times, tail_times, recorder = benchmark.pedantic(
        run_macro, args=(tmp_path,), rounds=1, iterations=1
    )
    micro = run_micro()

    off_median = statistics.median(off_times)
    on_median = statistics.median(on_times)
    live_median = statistics.median(live_times)
    tail_median = statistics.median(tail_times)
    subscriber_overhead = (
        live_median / on_median - 1.0 if on_median else 0.0
    )
    # Hook executions per run: every span open/close and metric update a
    # traced run performs is one disabled-mode hook in an untraced run.
    hook_count = len(recorder.records())
    snapshot = recorder.metrics.snapshot()
    metric_count = sum(
        len(snapshot[kind]) for kind in ("counters", "gauges", "histograms")
    )
    worst_hook_ns = max(micro["span_unguarded_ns"], micro["span_guarded_ns"])
    extrapolated_s = (hook_count + metric_count) * worst_hook_ns / 1e9
    disabled_overhead = extrapolated_s / off_median if off_median else 0.0

    payload = {
        "subject": SUBJECT_ID,
        "rounds": ROUNDS,
        "micro_ns_per_hook": micro,
        "macro": {
            "off_seconds": [round(t, 3) for t in off_times],
            "on_seconds": [round(t, 3) for t in on_times],
            "live_seconds": [round(t, 3) for t in live_times],
            "tail_seconds": [round(t, 3) for t in tail_times],
            "off_median_s": round(off_median, 3),
            "on_median_s": round(on_median, 3),
            "live_median_s": round(live_median, 3),
            "tail_median_s": round(tail_median, 3),
            "tracing_on_overhead": round(on_median / off_median - 1.0, 4),
            "progress_sink_overhead": round(subscriber_overhead, 4),
            "tail_sink_overhead": round(
                tail_median / on_median - 1.0 if on_median else 0.0, 4
            ),
            "subscriber_budget": SUBSCRIBER_OVERHEAD_BUDGET,
        },
        "extrapolation": {
            "span_and_event_records": hook_count,
            "metric_series": metric_count,
            "worst_hook_ns": worst_hook_ns,
            "disabled_overhead_fraction": round(disabled_overhead, 6),
            "budget": DISABLED_OVERHEAD_BUDGET,
        },
    }
    write_bench_json("BENCH_obs.json", payload)

    lines = [
        "Observability overhead",
        f"workload          : {SUBJECT_ID} quick transpile, median of {ROUNDS}",
        f"untraced (null)   : {off_median:.3f}s",
        f"traced            : {on_median:.3f}s "
        f"({payload['macro']['tracing_on_overhead']:+.1%})",
        f"traced + progress : {live_median:.3f}s "
        f"({subscriber_overhead:+.1%} vs traced)",
        f"traced + tail     : {tail_median:.3f}s "
        f"({payload['macro']['tail_sink_overhead']:+.1%} vs traced)",
        f"null span hook    : {micro['span_guarded_ns']:.0f}ns guarded, "
        f"{micro['span_unguarded_ns']:.0f}ns unguarded",
        f"null metric hook  : {micro['metric_guarded_ns']:.0f}ns",
        f"hooks per run     : {hook_count} spans/events + "
        f"{metric_count} metric series",
        f"disabled overhead : {disabled_overhead:.4%} extrapolated "
        f"(budget {DISABLED_OVERHEAD_BUDGET:.0%})",
    ]
    write_table("bench_obs.txt", "\n".join(lines))

    assert disabled_overhead <= DISABLED_OVERHEAD_BUDGET, (
        f"disabled instrumentation costs {disabled_overhead:.2%} "
        f"of the untraced run — over the "
        f"{DISABLED_OVERHEAD_BUDGET:.0%} budget"
    )
    assert subscriber_overhead <= SUBSCRIBER_OVERHEAD_BUDGET, (
        f"live progress sink costs {subscriber_overhead:.2%} over "
        f"tracing-only — over the {SUBSCRIBER_OVERHEAD_BUDGET:.0%} budget"
    )
    # The traced run must have actually traced something substantive.
    assert hook_count > 50
