"""Figure 3 — HLS compatibility error types in the (synthetic) forum
corpus: generate 1,000 posts with the published category mix and recover
the proportions with the keyword classifier."""

import pytest

from repro.hls.diagnostics import FORUM_PROPORTIONS, ErrorType
from repro.study import analyze_corpus, generate_corpus

from _shared import SEED, write_table


def run_fig3():
    posts = generate_corpus(1000, seed=SEED)
    return analyze_corpus(posts)


def test_fig3(benchmark):
    report = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    write_table("fig3_error_study.txt", report.render())

    assert report.total == 1000
    assert report.accuracy > 0.95
    for error_type, published in FORUM_PROPORTIONS.items():
        assert report.proportion(error_type) == pytest.approx(published, abs=0.02)
    # The headline ordering of Figure 3:
    assert (
        max(ErrorType, key=report.proportion)
        == ErrorType.UNSUPPORTED_DATA_TYPES
    )
    assert (
        min(ErrorType, key=report.proportion)
        == ErrorType.DYNAMIC_DATA_STRUCTURES
    )
