"""Benchmark-session hooks.

After the run, every regenerated table/figure written to
``benchmarks/out/`` is echoed into the terminal summary, so a plain
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures
the reproduced results alongside pytest-benchmark's timing table.
"""

from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not OUT_DIR.exists():
        return
    tables = sorted(OUT_DIR.glob("*.txt"))
    if not tables:
        return
    terminalreporter.section("regenerated tables and figures")
    for path in tables:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"===== {path.name} " + "=" * 40)
        for line in path.read_text().splitlines():
            terminalreporter.write_line(line)
