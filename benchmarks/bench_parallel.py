"""Process-parallel sweeps × the persistent result store.

The full workers × store matrix, emitted into
``benchmarks/out/BENCH_parallel.json`` (mirrored to the repo root and
uploaded as a CI artifact): for each worker count in
:data:`WORKER_COUNTS`, one **cold** ten-subject HeteroGen sweep against
a fresh store file and one **warm** rerun against the store the cold
sweep just filled.  Three guarantees are asserted along the way:

1. every cell's per-subject results (history, clock journal, attempts,
   final source) are bit-identical — parallelism and the store may only
   move wall-clock;
2. the warm rerun answers >= 50 % of its evaluations from the store
   (in practice ~100 %: the sweep is deterministic);
3. on a host with >= 4 CPUs, the cold sweep at 4 process workers is
   >= 2x faster than at 1 worker.  Subject-level fan-out
   (:func:`repro.core.parallel.run_subjects`) is what scales — inside
   one search, candidate evaluation is only ~20 % of wall-clock and is
   consumed in strict priority order, so candidate-grain speculation
   alone cannot reach 2x.  On smaller hosts the matrix is still
   measured and recorded, but the speedup assertion is skipped (and
   flagged in the payload): you cannot buy wall-clock parallelism the
   kernel does not offer;
4. a warm (100 %-hit) rerun is never slower than its cold run at any
   worker count (one retry absorbs host noise).

A second section measures the **delta wire format** at candidate grain:
the same ten subjects swept with ``executor="process"`` in the parent —
with delta wire on (graft on and ``REPRO_AST_GRAFT=0``) and once with
``REPRO_DELTA_WIRE=0`` — under
:func:`~repro.core.parallel.set_wire_accounting`.  All three sweeps
must be bit-identical; mean pickle bytes per job must drop by
:data:`MIN_WIRE_BYTES_RATIO`; and with AST grafting on, mean worker
parse seconds per *delta* job must drop by
:data:`MIN_PARSE_SECONDS_RATIO` against the PR 8 recorded baseline
(:data:`PR8_BASELINE_PARSE_SECONDS`) and by
:data:`MIN_INRUN_PARSE_RATIO` against the same-run graft-off sweep
(both enforced under ``REPRO_PARALLEL_ENFORCE``, recorded always).  The per-job overhead breakdown (splice seconds,
worker parse/graft/uid-remap seconds, per-tier cache hit rates,
resends) lands in the payload side by side for both graft modes.

``REPRO_PARALLEL_ENFORCE=1`` (the CI ``parallel-perf`` job) refuses to
run on a host with fewer than :data:`TARGET_WORKERS` CPUs instead of
silently recording an unenforced matrix.
"""

from __future__ import annotations

import itertools
import os
import time
from pathlib import Path

import pytest

from repro.baselines.variants import make_heterogen
from repro.cfront import nodes as N
from repro.cfront.graft import GRAFT_ENV, clear_decl_templates
from repro.core.parallel import (
    DELTA_ENV,
    reset_wire_totals,
    run_subjects,
    set_wire_accounting,
    shutdown_pool,
    wire_totals,
)
from repro.core.store import close_stores
from repro.hls.memo import clear_analysis_caches
from repro.subjects import all_subjects, get_subject

from _shared import OUT_DIR, config_for, write_bench_json, write_table

WORKER_COUNTS = (1, 2, 4, 8)

#: Worker count whose cold sweep must beat the 1-worker cold sweep 2x
#: (enforced only when the host can actually run 4 workers at once).
TARGET_WORKERS = 4
TARGET_SPEEDUP = 2.0
MIN_WARM_HIT_RATE = 0.5
#: Mean pickle bytes per job: full-source sweep vs delta-wire sweep.
MIN_WIRE_BYTES_RATIO = 5.0
#: Mean worker parse seconds per *delta* job before decl-grain grafting
#: existed: the PR 8 recorded bench (full reassembled-unit re-parse per
#: job, 2-worker wire sweep).  The PR 9 acceptance target is a >=5x
#: reduction of this mean with grafting on.
PR8_BASELINE_PARSE_SECONDS = 0.00944
#: Floor for ``PR8_BASELINE_PARSE_SECONDS / on-mean`` (the acceptance
#: criterion).  Delta jobs only — a cold process answers its first
#: delta job per context with a DeltaMiss and the resent full job pays
#: a full parse in either mode, so full jobs are bucketed separately.
#: Wall-clock, so the hard assertion runs under :data:`ENFORCE_ENV`
#: like the speedup floor; the measured ratio is always recorded.
MIN_PARSE_SECONDS_RATIO = 5.0
#: Floor for the stricter same-run graft-off/graft-on mean ratio, both
#: sweeps at :data:`WIRE_WORKERS` in this very process.  Contention-
#: free single-worker sweeps measure ~4.5-5.1x on a 1-CPU host: the
#: on-side mean is dominated by genuinely novel candidate edits (one
#: mini-parse each, unavoidable by caching), so the floor sits below
#: the baseline target with ~12% noise margin.
MIN_INRUN_PARSE_RATIO = 4.0
#: Pool width for the candidate-grain wire sweep (candidate evaluation
#: inside one search, not subject fan-out).  One worker: the wire sweep
#: measures per-job parse cost, not pool throughput, and a single
#: worker keeps the measurement honest — no cross-worker duplicate
#: mini-parses (each process misses independently; ProcessPoolExecutor
#: offers no job affinity) and no core contention on small hosts.
WIRE_WORKERS = 1
#: Set to 1 (the CI parallel-perf job does) to refuse hosts that cannot
#: enforce the speedup target instead of recording an unenforced matrix.
ENFORCE_ENV = "REPRO_PARALLEL_ENFORCE"

#: Result fields that must be bit-identical across every cell.  Cache
#: and store counters are deliberately absent: ``cache_hits`` counts
#: evaluations answered without running the toolchain (any tier), so
#: cold and warm runs *should* differ there — that difference is the
#: entire point of the store.
IDENTICAL_FIELDS = (
    "subject",
    "success",
    "hls_compatible",
    "repair_minutes",
    "clock_seconds",
    "history",
    "attempts",
    "final_source",
)


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _fresh_store(workers: int) -> str:
    """A per-cell store file (removing any previous run's leftovers)."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"parallel_store_w{workers}.sqlite"
    for suffix in ("", "-wal", "-shm"):
        leftover = Path(str(path) + suffix)
        if leftover.exists():
            leftover.unlink()
    return str(path)


def _run_cell(subject_ids, config, workers, store_path):
    """One sweep cell: fresh pool, cold parent caches, timed."""
    # Every cell forks its workers from the same parent state: analysis
    # memos cleared, no warm pool inherited from the previous cell.
    clear_analysis_caches()
    shutdown_pool()
    close_stores()
    start = time.perf_counter()
    summaries = run_subjects(
        subject_ids, "HeteroGen", config, workers, store_path=store_path
    )
    elapsed = time.perf_counter() - start
    return summaries, elapsed


def _comparable(summaries):
    return [{k: s[k] for k in IDENTICAL_FIELDS} for s in summaries]


def _hit_rate(summaries):
    hits = sum(s["store_hits"] for s in summaries)
    misses = sum(s["store_misses"] for s in summaries)
    return hits / (hits + misses) if hits + misses else 0.0


def run_matrix(subject_ids, config):
    cells = []
    reference = None
    for workers in WORKER_COUNTS:
        store_path = _fresh_store(workers)
        cold_summaries, cold_s = _run_cell(
            subject_ids, config, workers, store_path
        )
        warm_summaries, warm_s = _run_cell(
            subject_ids, config, workers, store_path
        )
        if warm_s > cold_s:
            # A 100%-hit warm sweep must not lose to cold; one retry
            # absorbs host noise before the assertion below bites.
            retry_summaries, retry_s = _run_cell(
                subject_ids, config, workers, store_path
            )
            if retry_s < warm_s:
                warm_summaries, warm_s = retry_summaries, retry_s
        assert _hit_rate(cold_summaries) == 0.0, (
            f"workers={workers}: the cold store was not cold"
        )
        warm_rate = _hit_rate(warm_summaries)
        comparable = _comparable(cold_summaries)
        assert _comparable(warm_summaries) == comparable, (
            f"workers={workers}: warm-store rerun diverged from the cold run"
        )
        if reference is None:
            reference = comparable
        assert comparable == reference, (
            f"workers={workers}: results diverged from the 1-worker cell"
        )
        cells.append({
            "workers": workers,
            "cold_seconds": round(cold_s, 1),
            "warm_seconds": round(warm_s, 1),
            "warm_store_hit_rate": round(warm_rate, 3),
        })
    return cells


def _run_wire_sweep(subject_ids, delta, graft="on"):
    """Ten subjects at candidate grain: ``executor="process"`` in the
    parent, wire accounting on, delta wire forced on or off, AST graft
    mode forced to *graft*.  Returns the accumulated wire totals, a
    per-subject comparable (history and fitness — bit-identity across
    every mode), and wall-clock."""
    previous = os.environ.get(DELTA_ENV)
    previous_graft = os.environ.get(GRAFT_ENV)
    os.environ[DELTA_ENV] = "1" if delta else "0"
    os.environ[GRAFT_ENV] = graft
    shutdown_pool()
    close_stores()
    clear_decl_templates()
    reset_wire_totals()
    set_wire_accounting(True)
    comparables = []
    start = time.perf_counter()
    try:
        for subject_id in subject_ids:
            # Same parent state for both modes: uids appear in history
            # labels, so both sweeps must mint them identically.
            N._uid_counter = itertools.count(1)
            clear_analysis_caches()
            subject = get_subject(subject_id)
            config = config_for("HeteroGen")
            config.search.executor = "process"
            config.search.workers = WIRE_WORKERS
            result = make_heterogen(config).transpile(
                subject.source,
                kernel_name=subject.kernel,
                solution=subject.solution,
                host_name=subject.host,
                host_args=list(subject.host_args),
                tests=subject.existing_test_list() or None,
                subject_name=subject.id,
            )
            best = result.search_result.best
            comparables.append({
                "subject": subject_id,
                "history": list(result.search_result.history),
                "fitness": best.fitness if best is not None else None,
            })
        elapsed = time.perf_counter() - start
        totals = wire_totals()
    finally:
        set_wire_accounting(False)
        reset_wire_totals()
        shutdown_pool()
        if previous is None:
            os.environ.pop(DELTA_ENV, None)
        else:
            os.environ[DELTA_ENV] = previous
        if previous_graft is None:
            os.environ.pop(GRAFT_ENV, None)
        else:
            os.environ[GRAFT_ENV] = previous_graft
    return totals, comparables, elapsed


def _wire_mode_stats(totals, elapsed):
    measured = max(1, totals["measured_jobs"])
    results = max(1, totals["worker_results"])
    return {
        "jobs": totals["jobs"],
        "delta_jobs": totals["delta_jobs"],
        "full_jobs": totals["full_jobs"],
        "resends": totals["resends"],
        "mean_wire_bytes_per_job": round(totals["wire_bytes"] / measured, 1),
        "splice_seconds": round(totals["splice_seconds"], 3),
        "mean_splice_seconds_per_job": round(
            totals["splice_seconds"] / results, 6
        ),
        "worker_parse_seconds": round(totals["parse_seconds"], 3),
        "mean_worker_parse_seconds_per_job": round(
            totals["parse_seconds"] / results, 6
        ),
        "mean_worker_parse_seconds_per_delta_job": round(
            totals["delta_parse_seconds"] / max(1, totals["delta_results"]), 6
        ),
        "unit_cache_hit_rate": round(
            totals["unit_cache_hits"] / results, 3
        ),
        "grafted_jobs": totals["grafted_jobs"],
        "graft_seconds": round(totals["graft_seconds"], 3),
        "mean_graft_seconds_per_job": round(
            totals["graft_seconds"] / results, 6
        ),
        "uid_remap_seconds": round(totals["uid_remap_seconds"], 3),
        "mean_uid_remap_seconds_per_job": round(
            totals["uid_remap_seconds"] / results, 6
        ),
        "decl_cache_hit_rate": round(
            totals["decl_cache_hits"]
            / max(1, totals["decl_cache_hits"] + totals["decl_cache_misses"]),
            3,
        ),
        "reused_functions": totals["reused_functions"],
        "sweep_seconds": round(elapsed, 1),
    }


def wire_stats_section(subject_ids):
    """Delta-wire sweeps with graft on and off, plus the full-source
    sweep: identical results across all three, >= MIN_WIRE_BYTES_RATIO
    mean pickle-bytes drop per job, and the graft-on/off worker parse
    seconds reported side by side for the MIN_PARSE_SECONDS_RATIO
    floor."""
    delta_totals, delta_results, delta_s = _run_wire_sweep(
        subject_ids, True, graft="on"
    )
    off_totals, off_results, off_s = _run_wire_sweep(
        subject_ids, True, graft="off"
    )
    full_totals, full_results, full_s = _run_wire_sweep(
        subject_ids, False, graft="off"
    )
    assert delta_results == off_results, (
        "graft-on sweep diverged from the REPRO_AST_GRAFT=0 sweep"
    )
    assert delta_results == full_results, (
        "delta-wire sweep diverged from the REPRO_DELTA_WIRE=0 sweep"
    )
    delta_stats = _wire_mode_stats(delta_totals, delta_s)
    off_stats = _wire_mode_stats(off_totals, off_s)
    full_stats = _wire_mode_stats(full_totals, full_s)
    ratio = (
        full_stats["mean_wire_bytes_per_job"]
        / max(1.0, delta_stats["mean_wire_bytes_per_job"])
    )
    # The elision claim is about delta jobs: a cold process answers its
    # first delta job per context with a DeltaMiss and the resent full
    # job pays a full parse in either mode, so the per-kind bucket keeps
    # those out of the comparison.
    parse_ratio = off_stats["mean_worker_parse_seconds_per_delta_job"] / max(
        1e-9, delta_stats["mean_worker_parse_seconds_per_delta_job"]
    )
    baseline_ratio = PR8_BASELINE_PARSE_SECONDS / max(
        1e-9, delta_stats["mean_worker_parse_seconds_per_delta_job"]
    )
    return {
        "workers": WIRE_WORKERS,
        "delta": delta_stats,
        "delta_graft_off": off_stats,
        "full": full_stats,
        "wire_bytes_ratio": round(ratio, 2),
        "min_wire_bytes_ratio": MIN_WIRE_BYTES_RATIO,
        "worker_parse_seconds_ratio": round(parse_ratio, 2),
        "min_inrun_parse_ratio": MIN_INRUN_PARSE_RATIO,
        "pr8_baseline_parse_seconds": PR8_BASELINE_PARSE_SECONDS,
        "parse_ratio_vs_pr8_baseline": round(baseline_ratio, 2),
        "min_parse_seconds_ratio": MIN_PARSE_SECONDS_RATIO,
    }


def test_parallel_sweep(benchmark):
    cpus = _available_cpus()
    enforce_requested = os.environ.get(ENFORCE_ENV, "") == "1"
    if enforce_requested and cpus < TARGET_WORKERS:
        pytest.skip(
            f"{ENFORCE_ENV}=1 requires >= {TARGET_WORKERS} CPUs to enforce "
            f"the speedup target; this host has {cpus}"
        )

    subject_ids = [s.id for s in all_subjects()]
    config = config_for("HeteroGen")
    config.search.workers = 1  # subject-level fan-out only
    cells = benchmark.pedantic(
        run_matrix, args=(subject_ids, config), rounds=1, iterations=1
    )
    shutdown_pool()
    close_stores()

    wire = wire_stats_section(subject_ids)
    close_stores()

    baseline = next(c for c in cells if c["workers"] == 1)
    target = next(c for c in cells if c["workers"] == TARGET_WORKERS)
    for cell in cells:
        cell["cold_speedup_vs_1"] = round(
            baseline["cold_seconds"] / cell["cold_seconds"], 2
        )
    speedup_enforced = cpus >= TARGET_WORKERS

    payload = {
        "subjects": subject_ids,
        "available_cpus": cpus,
        "matrix": cells,
        "cold_speedup_at_target": target["cold_speedup_vs_1"],
        "target_workers": TARGET_WORKERS,
        "target_speedup": TARGET_SPEEDUP,
        "speedup_target_enforced": speedup_enforced,
        "speedup_enforce_requested": enforce_requested,
        "min_warm_hit_rate": MIN_WARM_HIT_RATE,
        "wire": wire,
    }
    write_bench_json("BENCH_parallel.json", payload)

    lines = [
        "Process-parallel sweeps x persistent store "
        f"({len(subject_ids)} subjects, {cpus} CPUs available)",
        f"{'Workers':>7} {'Cold(s)':>8} {'Warm(s)':>8} {'WarmHit':>8} "
        f"{'Speedup':>8}",
    ]
    for cell in cells:
        lines.append(
            f"{cell['workers']:7} {cell['cold_seconds']:8.1f} "
            f"{cell['warm_seconds']:8.1f} "
            f"{cell['warm_store_hit_rate']:7.0%} "
            f"{cell['cold_speedup_vs_1']:7.2f}x"
        )
    lines.append("")
    lines.append(
        f"cold speedup at {TARGET_WORKERS} workers: "
        f"{target['cold_speedup_vs_1']:.2f}x "
        f"(target {TARGET_SPEEDUP:.0f}x, "
        f"{'enforced' if speedup_enforced else 'not enforced: too few CPUs'})"
    )
    lines.append("")
    lines.append(
        f"delta wire at {WIRE_WORKERS} workers (candidate grain): "
        f"{wire['delta']['mean_wire_bytes_per_job']:.0f} B/job vs "
        f"{wire['full']['mean_wire_bytes_per_job']:.0f} B/job full "
        f"({wire['wire_bytes_ratio']:.1f}x, "
        f"target {MIN_WIRE_BYTES_RATIO:.0f}x); "
        f"unit-cache hit rate {wire['delta']['unit_cache_hit_rate']:.0%}, "
        f"splice {wire['delta']['mean_splice_seconds_per_job'] * 1e3:.2f} "
        f"ms/job, {wire['delta']['resends']} resends"
    )
    on, off = wire["delta"], wire["delta_graft_off"]
    lines.append(
        f"AST graft on: parse "
        f"{on['mean_worker_parse_seconds_per_delta_job'] * 1e3:.2f} "
        f"ms/delta job + graft "
        f"{on['mean_graft_seconds_per_job'] * 1e3:.2f} ms/job + uid remap "
        f"{on['mean_uid_remap_seconds_per_job'] * 1e3:.2f} ms/job, "
        f"decl-cache hit rate {on['decl_cache_hit_rate']:.0%}, "
        f"{on['grafted_jobs']} grafted jobs; graft off: parse "
        f"{off['mean_worker_parse_seconds_per_delta_job'] * 1e3:.2f} "
        f"ms/delta job "
        f"({wire['worker_parse_seconds_ratio']:.1f}x in-run drop, "
        f"floor {MIN_INRUN_PARSE_RATIO:.0f}x; "
        f"{wire['parse_ratio_vs_pr8_baseline']:.1f}x vs PR 8 baseline "
        f"{PR8_BASELINE_PARSE_SECONDS * 1e3:.2f} ms, "
        f"target {MIN_PARSE_SECONDS_RATIO:.0f}x)"
    )
    write_table("bench_parallel.txt", "\n".join(lines))

    for cell in cells:
        assert cell["warm_store_hit_rate"] >= MIN_WARM_HIT_RATE
        assert cell["warm_seconds"] <= cell["cold_seconds"], (
            f"workers={cell['workers']}: warm rerun "
            f"({cell['warm_seconds']}s) slower than cold "
            f"({cell['cold_seconds']}s) despite a "
            f"{cell['warm_store_hit_rate']:.0%} store hit rate"
        )
    assert wire["wire_bytes_ratio"] >= MIN_WIRE_BYTES_RATIO
    assert wire["delta"]["grafted_jobs"] > 0, (
        "graft-on sweep never exercised the graft path"
    )
    assert wire["delta_graft_off"]["grafted_jobs"] == 0, (
        "REPRO_AST_GRAFT=0 sweep still grafted"
    )
    if enforce_requested:
        # Wall-clock ratios: enforced only where the runner is
        # dedicated enough to assert timing (the CI parallel-perf job),
        # always recorded in the payload above.  The acceptance target
        # is the drop against the PR 8 recorded baseline (whole-unit
        # re-parse per delta job); the same-run off/on ratio is a
        # stricter contention-free cross-check with its own floor.
        assert (
            wire["parse_ratio_vs_pr8_baseline"] >= MIN_PARSE_SECONDS_RATIO
        ), (
            f"worker parse seconds per delta job dropped only "
            f"{wire['parse_ratio_vs_pr8_baseline']:.1f}x vs the PR 8 "
            f"baseline (target {MIN_PARSE_SECONDS_RATIO:.0f}x)"
        )
        assert (
            wire["worker_parse_seconds_ratio"] >= MIN_INRUN_PARSE_RATIO
        ), (
            f"worker parse seconds dropped only "
            f"{wire['worker_parse_seconds_ratio']:.1f}x with graft on "
            f"in the same run (floor {MIN_INRUN_PARSE_RATIO:.0f}x)"
        )
    if speedup_enforced:
        assert target["cold_speedup_vs_1"] >= TARGET_SPEEDUP
