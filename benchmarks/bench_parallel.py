"""Process-parallel sweeps × the persistent result store.

The full workers × store matrix, emitted into
``benchmarks/out/BENCH_parallel.json`` (mirrored to the repo root and
uploaded as a CI artifact): for each worker count in
:data:`WORKER_COUNTS`, one **cold** ten-subject HeteroGen sweep against
a fresh store file and one **warm** rerun against the store the cold
sweep just filled.  Three guarantees are asserted along the way:

1. every cell's per-subject results (history, clock journal, attempts,
   final source) are bit-identical — parallelism and the store may only
   move wall-clock;
2. the warm rerun answers >= 50 % of its evaluations from the store
   (in practice ~100 %: the sweep is deterministic);
3. on a host with >= 4 CPUs, the cold sweep at 4 process workers is
   >= 2x faster than at 1 worker.  Subject-level fan-out
   (:func:`repro.core.parallel.run_subjects`) is what scales — inside
   one search, candidate evaluation is only ~20 % of wall-clock and is
   consumed in strict priority order, so candidate-grain speculation
   alone cannot reach 2x.  On smaller hosts the matrix is still
   measured and recorded, but the speedup assertion is skipped (and
   flagged in the payload): you cannot buy wall-clock parallelism the
   kernel does not offer.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.core.parallel import run_subjects, shutdown_pool
from repro.core.store import close_stores
from repro.hls.memo import clear_analysis_caches
from repro.subjects import all_subjects

from _shared import OUT_DIR, config_for, write_bench_json, write_table

WORKER_COUNTS = (1, 2, 4, 8)

#: Worker count whose cold sweep must beat the 1-worker cold sweep 2x
#: (enforced only when the host can actually run 4 workers at once).
TARGET_WORKERS = 4
TARGET_SPEEDUP = 2.0
MIN_WARM_HIT_RATE = 0.5

#: Result fields that must be bit-identical across every cell.  Cache
#: and store counters are deliberately absent: ``cache_hits`` counts
#: evaluations answered without running the toolchain (any tier), so
#: cold and warm runs *should* differ there — that difference is the
#: entire point of the store.
IDENTICAL_FIELDS = (
    "subject",
    "success",
    "hls_compatible",
    "repair_minutes",
    "clock_seconds",
    "history",
    "attempts",
    "final_source",
)


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _fresh_store(workers: int) -> str:
    """A per-cell store file (removing any previous run's leftovers)."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"parallel_store_w{workers}.sqlite"
    for suffix in ("", "-wal", "-shm"):
        leftover = Path(str(path) + suffix)
        if leftover.exists():
            leftover.unlink()
    return str(path)


def _run_cell(subject_ids, config, workers, store_path):
    """One sweep cell: fresh pool, cold parent caches, timed."""
    # Every cell forks its workers from the same parent state: analysis
    # memos cleared, no warm pool inherited from the previous cell.
    clear_analysis_caches()
    shutdown_pool()
    close_stores()
    start = time.perf_counter()
    summaries = run_subjects(
        subject_ids, "HeteroGen", config, workers, store_path=store_path
    )
    elapsed = time.perf_counter() - start
    return summaries, elapsed


def _comparable(summaries):
    return [{k: s[k] for k in IDENTICAL_FIELDS} for s in summaries]


def _hit_rate(summaries):
    hits = sum(s["store_hits"] for s in summaries)
    misses = sum(s["store_misses"] for s in summaries)
    return hits / (hits + misses) if hits + misses else 0.0


def run_matrix(subject_ids, config):
    cells = []
    reference = None
    for workers in WORKER_COUNTS:
        store_path = _fresh_store(workers)
        cold_summaries, cold_s = _run_cell(
            subject_ids, config, workers, store_path
        )
        warm_summaries, warm_s = _run_cell(
            subject_ids, config, workers, store_path
        )
        assert _hit_rate(cold_summaries) == 0.0, (
            f"workers={workers}: the cold store was not cold"
        )
        warm_rate = _hit_rate(warm_summaries)
        comparable = _comparable(cold_summaries)
        assert _comparable(warm_summaries) == comparable, (
            f"workers={workers}: warm-store rerun diverged from the cold run"
        )
        if reference is None:
            reference = comparable
        assert comparable == reference, (
            f"workers={workers}: results diverged from the 1-worker cell"
        )
        cells.append({
            "workers": workers,
            "cold_seconds": round(cold_s, 1),
            "warm_seconds": round(warm_s, 1),
            "warm_store_hit_rate": round(warm_rate, 3),
        })
    return cells


def test_parallel_sweep(benchmark):
    subject_ids = [s.id for s in all_subjects()]
    config = config_for("HeteroGen")
    config.search.workers = 1  # subject-level fan-out only
    cells = benchmark.pedantic(
        run_matrix, args=(subject_ids, config), rounds=1, iterations=1
    )
    shutdown_pool()
    close_stores()

    cpus = _available_cpus()
    baseline = next(c for c in cells if c["workers"] == 1)
    target = next(c for c in cells if c["workers"] == TARGET_WORKERS)
    for cell in cells:
        cell["cold_speedup_vs_1"] = round(
            baseline["cold_seconds"] / cell["cold_seconds"], 2
        )
    speedup_enforced = cpus >= TARGET_WORKERS

    payload = {
        "subjects": subject_ids,
        "available_cpus": cpus,
        "matrix": cells,
        "cold_speedup_at_target": target["cold_speedup_vs_1"],
        "target_workers": TARGET_WORKERS,
        "target_speedup": TARGET_SPEEDUP,
        "speedup_target_enforced": speedup_enforced,
        "min_warm_hit_rate": MIN_WARM_HIT_RATE,
    }
    write_bench_json("BENCH_parallel.json", payload)

    lines = [
        "Process-parallel sweeps x persistent store "
        f"({len(subject_ids)} subjects, {cpus} CPUs available)",
        f"{'Workers':>7} {'Cold(s)':>8} {'Warm(s)':>8} {'WarmHit':>8} "
        f"{'Speedup':>8}",
    ]
    for cell in cells:
        lines.append(
            f"{cell['workers']:7} {cell['cold_seconds']:8.1f} "
            f"{cell['warm_seconds']:8.1f} "
            f"{cell['warm_store_hit_rate']:7.0%} "
            f"{cell['cold_speedup_vs_1']:7.2f}x"
        )
    lines.append("")
    lines.append(
        f"cold speedup at {TARGET_WORKERS} workers: "
        f"{target['cold_speedup_vs_1']:.2f}x "
        f"(target {TARGET_SPEEDUP:.0f}x, "
        f"{'enforced' if speedup_enforced else 'not enforced: too few CPUs'})"
    )
    write_table("bench_parallel.txt", "\n".join(lines))

    for cell in cells:
        assert cell["warm_store_hit_rate"] >= MIN_WARM_HIT_RATE
    if speedup_enforced:
        assert target["cold_speedup_vs_1"] >= TARGET_SPEEDUP
