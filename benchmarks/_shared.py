"""Shared infrastructure for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper.  The
heavyweight computation (a full HeteroGen run per subject and variant) is
cached at module level so Table 3, Table 5 and Figure 9 do not repeat
each other's work; the cached callable is what ``pytest-benchmark``
times on its first execution.

Every benchmark writes its rendered table under ``benchmarks/out/`` so
the regenerated results can be inspected (and are quoted in
EXPERIMENTS.md).
"""

from __future__ import annotations

import functools
import json
from pathlib import Path

from repro.baselines import TWELVE_HOURS, default_config, run_variant
from repro.core.report import TranspileResult
from repro.obs.export import git_describe
from repro.subjects import all_subjects, get_subject

OUT_DIR = Path(__file__).parent / "out"
REPO_ROOT = Path(__file__).parent.parent

#: One deterministic seed for every run in the harness.
SEED = 2022

#: Schema tag stamped into every ``BENCH_*.json`` payload.  Bump when
#: the shape of a bench artifact changes incompatibly, so downstream
#: consumers (EXPERIMENTS.md tooling, trend dashboards) can tell old
#: artifacts from new ones.
BENCH_SCHEMA_VERSION = 1


def write_table(name: str, text: str) -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / name
    path.write_text(text)
    return path


def write_bench_json(name: str, payload: dict) -> Path:
    """Emit a ``BENCH_*.json`` artifact (the single mirroring helper).

    Convention (see benchmarks/README.md): the artifact is written under
    ``benchmarks/out/`` like every other harness output, and mirrored
    verbatim to the repo root so the headline numbers are one click away
    in the tree.  All bench scripts emit through here; nothing else
    writes to the root.

    Every payload is stamped with ``schema_version`` and the source
    tree's ``git describe`` so an artifact is attributable to the code
    that produced it.
    """
    OUT_DIR.mkdir(exist_ok=True)
    stamped = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "git_describe": git_describe(),
    }
    stamped.update(payload)
    text = json.dumps(stamped, indent=2)
    path = OUT_DIR / name
    path.write_text(text)
    (REPO_ROOT / name).write_text(text)
    return path


def config_for(variant: str):
    """Benchmark-sized budgets per variant."""
    if variant == "WithoutDependence":
        # Figure 9 caps this variant at 12 simulated hours.
        return default_config(
            budget_seconds=TWELVE_HOURS,
            max_iterations=500,
            fuzz_execs=800,
            seed=SEED,
        )
    return default_config(
        budget_seconds=3 * 3600.0,
        max_iterations=220,
        fuzz_execs=800,
        seed=SEED,
    )


@functools.lru_cache(maxsize=None)
def transpile(subject_id: str, variant: str = "HeteroGen") -> TranspileResult:
    """Run (once) and cache a variant on a subject."""
    subject = get_subject(subject_id)
    return run_variant(subject, variant, config_for(variant))


def subject_ids():
    return [s.id for s in all_subjects()]
