"""Extra ablation (beyond the paper's figures): kernel-seed extraction.

Algorithm 1 seeds the fuzzer with the concrete values the host program
passes to the kernel ("such intermediate states are ensured to be valid,
leading to improved fuzzing efficiency", §4).  This ablation measures
that claim: fuzz every subject with and without the captured seed, with
the same budget, and compare branch coverage and executions needed.
"""

import pytest

from repro.fuzz import FuzzConfig, fuzz_kernel, get_kernel_seed
from repro.subjects import all_subjects

from _shared import SEED, write_table

BUDGET = FuzzConfig(max_execs=1200, plateau_execs=400, seed=SEED)


def run_ablation():
    rows = []
    for subject in all_subjects():
        unit = subject.parse()
        seeds = get_kernel_seed(
            unit, subject.host, subject.kernel, list(subject.host_args)
        )
        seeded = fuzz_kernel(unit, subject.kernel, BUDGET, seeds=seeds)
        unseeded = fuzz_kernel(unit, subject.kernel, BUDGET, seeds=None)
        rows.append((subject, seeded, unseeded))
    return rows


def render(rows):
    header = (
        f"{'ID':4} {'seeded cov':>11} {'random cov':>11} "
        f"{'seeded execs':>13} {'random execs':>13}"
    )
    lines = ["Ablation — kernel-seed extraction (Algorithm 1 line 4)",
             header, "-" * len(header)]
    for subject, seeded, unseeded in rows:
        lines.append(
            f"{subject.id:4} {seeded.coverage_ratio:11.0%} "
            f"{unseeded.coverage_ratio:11.0%} {seeded.execs:13} "
            f"{unseeded.execs:13}"
        )
    wins = sum(
        1 for _s, a, b in rows if a.coverage_ratio >= b.coverage_ratio
    )
    lines.append("")
    lines.append(f"seeded coverage >= random coverage on {wins}/10 subjects")
    return "\n".join(lines)


def test_ablation_seed(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    write_table("ablation_seed.txt", render(rows))

    # Seeding never hurts coverage under an equal budget on the vast
    # majority of subjects (allowing one stochastic exception).
    losses = sum(
        1 for _s, seeded, unseeded in rows
        if seeded.coverage_ratio < unseeded.coverage_ratio
    )
    assert losses <= 2
