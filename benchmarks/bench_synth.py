"""Evidence-driven synthesis — candidates evaluated per repaired subject.

Two claims, both emitted into ``benchmarks/out/BENCH_synth.json``:

1. **Effectiveness** — with synthesis-first proposal (`REPRO_SYNTH` /
   ``SearchConfig.use_synthesis``) the search derives edit parameters
   (stack capacities from profiled call depths, array extents and
   bitwidths from value ranges, pragma factors from the latency model)
   instead of enumerating ladders.  On the subjects whose repairs are
   parameter-shaped the number of candidates evaluated before success
   drops by at least 3x.

2. **Identity** — with synthesis *off* the search is bit-identical to
   the pre-synthesis implementation: the full ten-subject sweep
   (applied chains, attempt counts, history lines, simulated clock,
   rendered final source) matches the committed golden snapshot
   ``benchmarks/golden_synth_off.json`` field for field.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.baselines import default_config, run_variant
from repro.subjects import all_subjects

from _shared import write_bench_json, write_table

GOLDEN_PATH = Path(__file__).parent / "golden_synth_off.json"

#: Subjects whose repair chains carry derived parameters (stack
#: capacities, VLA extents, bitwidths, pragma factors) — the population
#: the >= 3x acceptance bound applies to.  The remaining subjects'
#: repairs are structural or configuration-shaped (e.g. P10's
#: device/clock/top fixes), where derivation can only trim the
#: exploration around them.
PARAMETER_SHAPED = ("P2", "P3", "P5", "P6", "P7", "P8")

MIN_RATIO = 3.0


def _snapshot(result) -> dict:
    sr = result.search_result
    return {
        "applied": list(sr.best.candidate.applied) if sr.best else [],
        "attempts": sr.stats.attempts,
        "clock_seconds": round(sr.clock.seconds, 2),
        "final_render_sha": hashlib.sha256(
            result.final_source().encode()
        ).hexdigest(),
        "fitness": repr(sr.best.fitness) if sr.best else None,
        "history": list(sr.history),
        "iterations": sr.stats.iterations,
        "success_seconds": sr.success_seconds,
    }


def run_sweep(use_synthesis: bool) -> dict:
    out = {}
    for subject in all_subjects():
        config = default_config()
        config.search.use_synthesis = use_synthesis
        out[subject.id] = _snapshot(run_variant(subject, "HeteroGen", config))
    return out


def run_bench() -> dict:
    golden = json.loads(GOLDEN_PATH.read_text())
    enum_sweep = run_sweep(use_synthesis=False)
    synth_sweep = run_sweep(use_synthesis=True)

    digest = hashlib.sha256(
        json.dumps(enum_sweep, sort_keys=True).encode()
    ).hexdigest()
    identity = digest == golden["digest"]
    mismatches = [
        sid
        for sid, snap in golden["subjects"].items()
        if enum_sweep.get(sid) != snap
    ]

    rows = {}
    for sid, enum_snap in enum_sweep.items():
        synth_snap = synth_sweep[sid]
        rows[sid] = {
            "attempts_enumerated": enum_snap["attempts"],
            "attempts_synthesis": synth_snap["attempts"],
            "ratio": round(
                enum_snap["attempts"] / synth_snap["attempts"], 2
            ),
            "parameter_shaped": sid in PARAMETER_SHAPED,
            "synthesis_success": synth_snap["fitness"] is not None
            and "fail_ratio=0.0" in synth_snap["fitness"],
            "applied_synthesis": synth_snap["applied"],
        }
    return {
        "identity_digest": digest,
        "identity_matches_golden": identity,
        "identity_mismatched_subjects": mismatches,
        "min_ratio_required": MIN_RATIO,
        "subjects": rows,
    }


def test_synth_sweep(benchmark):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)

    # Claim 2: synthesis off is bit-identical to the pre-synthesis search.
    assert payload["identity_matches_golden"], (
        "enumerated-mode sweep diverged from benchmarks/golden_synth_off"
        f".json on {payload['identity_mismatched_subjects']}"
    )

    # Claim 1: >= 3x fewer candidate evaluations on the
    # parameter-shaped subjects, and synthesis still repairs everything.
    for sid, row in payload["subjects"].items():
        assert row["synthesis_success"], f"{sid} no longer repairs"
        if row["parameter_shaped"]:
            assert row["ratio"] >= MIN_RATIO, (
                f"{sid}: {row['attempts_enumerated']} -> "
                f"{row['attempts_synthesis']} attempts is only "
                f"{row['ratio']}x (need >= {MIN_RATIO}x)"
            )

    lines = [
        "Evidence-driven synthesis: candidates evaluated per repair",
        "",
        f"{'subject':8s} {'enumerated':>10s} {'synthesis':>9s} "
        f"{'ratio':>6s}  param-shaped",
    ]
    for sid, row in payload["subjects"].items():
        lines.append(
            f"{sid:8s} {row['attempts_enumerated']:>10d} "
            f"{row['attempts_synthesis']:>9d} {row['ratio']:>5.2f}x"
            f"  {'yes' if row['parameter_shaped'] else 'no'}"
        )
    lines.append("")
    lines.append(
        "identity (synthesis off): "
        + ("bit-identical to golden" if payload["identity_matches_golden"]
           else "DIVERGED")
    )
    write_table("synth_candidates.txt", "\n".join(lines) + "\n")
    write_bench_json("BENCH_synth.json", payload)
