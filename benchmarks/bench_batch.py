"""Batch backend — pooled ``run_many`` vs per-input compiled execution.

Three measurements, all emitted into ``benchmarks/out/BENCH_batch.json``
(uploaded as a CI artifact, mirrored to the repo root):

1. **execution loop** — replay each Table 3 subject's fuzz corpus through
   one ``run_many`` call on the batch backend against a per-input
   ``run`` loop on the compiled backend.  Per-input (steps, fault-kind)
   traces are asserted identical along the way, so the speedup is never
   bought with semantic drift.  Target: >= 1.5x median.
2. **codegen coverage** — per subject, how many functions the batch
   compiler generated flat source for versus fell back to pooled
   closures (a fallback-heavy subject would silently lose the speedup).
3. **end-to-end Table 3 sweep** — the full ten-subject HeteroGen run
   under ``interp_backend="batch"`` against the same sweep under
   ``"compiled"``, with every per-subject result dict asserted
   bit-identical between the two (the pipeline-level charge-identity
   check).
"""

from __future__ import annotations

import re
import statistics
import time

from repro.baselines import default_config, run_variant
from repro.cli import result_to_dict
from repro.fuzz import FuzzConfig, fuzz_kernel
from repro.interp import ExecLimits, engine_run_many, make_engine
from repro.subjects import all_subjects

from _shared import SEED, write_bench_json, write_table

#: Corpus replays per backend when timing the execution loop.
REPEATS = 3

LOOSE = ExecLimits(max_steps=120_000, max_depth=128)


def build_corpora():
    """One deterministic fuzz corpus per subject (built once, replayed
    under both backends)."""
    corpora = []
    for subject in all_subjects():
        unit = subject.parse()
        report = fuzz_kernel(
            unit,
            subject.kernel,
            FuzzConfig(max_execs=250, plateau_execs=250, seed=SEED),
            seeds=subject.existing_test_list() or None,
            backend="tree",
        )
        corpora.append((subject, unit, report.suite(40)))
    return corpora


def replay(engine, kernel, suite):
    """One pass over the suite; per-test (steps, fault-kind) trace.

    Both backends go through :func:`engine_run_many`, so the batch side
    exercises the pooled ``run_many`` fast path while the compiled side
    runs the per-input loop — exactly the code paths the consumers use.
    """
    trace = []
    for record in engine_run_many(engine, kernel, suite):
        if record.result is not None:
            trace.append((record.result.steps, ""))
        else:
            trace.append((-1, type(record.error).__name__))
    return trace


def time_backend(unit, kernel, suite, backend):
    engine = make_engine(unit, backend=backend, limits=LOOSE,
                         want_out_args=False)
    trace = replay(engine, kernel, suite)  # warm-up (and the compile)
    start = time.perf_counter()
    for _ in range(REPEATS):
        replay(engine, kernel, suite)
    return time.perf_counter() - start, trace, engine


def run_batch_loop(corpora):
    rows = []
    for subject, unit, suite in corpora:
        comp_s, comp_trace, _ = time_backend(unit, subject.kernel, suite,
                                             "compiled")
        batch_s, batch_trace, engine = time_backend(unit, subject.kernel,
                                                    suite, "batch")
        assert comp_trace == batch_trace, (
            f"{subject.id}: batch diverged from compiled on the fuzz corpus"
        )
        rows.append({
            "subject": subject.id,
            "tests": len(suite),
            "compiled_seconds": round(comp_s, 4),
            "batch_seconds": round(batch_s, 4),
            "speedup": round(comp_s / batch_s, 2) if batch_s else 0.0,
            "generated_functions": engine.program.generated,
            "fallback_functions": engine.program.fallback_functions,
        })
    return rows


def run_table3_sweep(backend):
    """Full ten-subject run; returns (elapsed, per-subject result dicts)."""
    config = default_config(
        budget_seconds=3 * 3600.0,
        max_iterations=220,
        fuzz_execs=800,
        seed=SEED,
        interp_backend=backend,
    )
    start = time.perf_counter()
    results = [
        run_variant(subject, "HeteroGen", config)
        for subject in all_subjects()
    ]
    elapsed = time.perf_counter() - start
    assert all(r.hls_compatible and r.behavior_preserved for r in results)
    return elapsed, [result_to_dict(r) for r in results]


def _strip_uids(obj):
    """Replace ``@<uid>`` node references in strings with ``@N``."""
    if isinstance(obj, dict):
        return {k: _strip_uids(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_strip_uids(v) for v in obj]
    if isinstance(obj, str):
        return re.sub(r"@\d+", "@N", obj)
    return obj


def test_batch_backend(benchmark):
    corpora = build_corpora()
    loop_rows = benchmark.pedantic(
        run_batch_loop, args=(corpora,), rounds=1, iterations=1
    )

    compiled_sweep_s, compiled_dicts = run_table3_sweep("compiled")
    batch_sweep_s, batch_dicts = run_table3_sweep("batch")
    # The pipeline-level identity check: every subject's full result —
    # edits applied, speedup, repair iterations, generated tests — must
    # be bit-identical under the batch backend.  Edit labels embed AST
    # node uids (``loop@2278``) drawn from a process-global counter, so
    # the second sweep in this process parses its units at higher uids;
    # normalize those before comparing (the CI job re-runs the pipeline
    # in separate processes and diffs the raw JSON byte-for-byte).
    for comp_d, batch_d in zip(compiled_dicts, batch_dicts):
        assert _strip_uids(comp_d) == _strip_uids(batch_d), (
            f"{comp_d.get('subject')}: pipeline output diverged under batch"
        )

    median_speedup = statistics.median(r["speedup"] for r in loop_rows)
    payload = {
        "repeats": REPEATS,
        "execution_loop": loop_rows,
        "median_speedup": median_speedup,
        "codegen": {
            "generated_functions": sum(
                r["generated_functions"] for r in loop_rows
            ),
            "fallback_functions": sum(
                r["fallback_functions"] for r in loop_rows
            ),
        },
        "table3_sweep": {
            "compiled_seconds": round(compiled_sweep_s, 1),
            "batch_seconds": round(batch_sweep_s, 1),
            "delta_seconds": round(compiled_sweep_s - batch_sweep_s, 1),
            "pipeline_output_identical": True,
        },
    }
    write_bench_json("BENCH_batch.json", payload)

    lines = [
        "Batch backend — pooled run_many vs per-input compiled loop",
        f"{'ID':4} {'Tests':>5} {'Compiled(s)':>12} {'Batch(s)':>9} "
        f"{'Speedup':>8} {'Fallbacks':>9}",
    ]
    for row in loop_rows:
        lines.append(
            f"{row['subject']:4} {row['tests']:5} "
            f"{row['compiled_seconds']:12.3f} {row['batch_seconds']:9.3f} "
            f"{row['speedup']:7.2f}x {row['fallback_functions']:9}"
        )
    lines.append("")
    lines.append(f"median execution-loop speedup: {median_speedup:.2f}x "
                 f"(target: >= 1.5x)")
    lines.append(
        f"Table 3 sweep: {batch_sweep_s:.1f}s batch vs "
        f"{compiled_sweep_s:.1f}s compiled (outputs bit-identical)"
    )
    write_table("bench_batch.txt", "\n".join(lines))

    assert median_speedup >= 1.5
