"""Table 1 — example HLS compatibility errors.

Renders the taxonomy and verifies, family by family, that the simulated
toolchain actually produces each Table 1 symptom on the construct the
paper describes — i.e. the taxonomy is executable, not just prose.
"""

import pytest

from repro.cfront import parse
from repro.hls import SolutionConfig, compile_unit
from repro.hls.diagnostics import ErrorType
from repro.study import TAXONOMY, render_table1

from _shared import write_table

#: Minimal reproducer per family, mirroring the cited forum posts.
REPRODUCERS = {
    ErrorType.DYNAMIC_DATA_STRUCTURES:
        "int kernel(int cols) { float line_buf_a[cols]; return 0; }",
    ErrorType.UNSUPPORTED_DATA_TYPES:
        "int kernel() { long double x = 1.0; return (int)x; }",
    ErrorType.DATAFLOW_OPTIMIZATION: """
        void my_func(int data[8], int out[8]) {
            for (int i = 0; i < 8; i++) { out[i] = data[i]; }
        }
        void kernel(int data[8], int a[8], int b[8]) {
            #pragma HLS dataflow
            my_func(data, a);
            my_func(data, b);
        }
    """,
    ErrorType.LOOP_PARALLELIZATION: """
        void kernel(int a[8]) {
            #pragma HLS dataflow
            for (int i = 0; i < 8; i++) {
                #pragma HLS unroll factor=50
                a[i] = i;
            }
        }
    """,
    ErrorType.STRUCT_AND_UNION: """
        struct If2 {
            int x;
            void do1() { this->x = 1; }
        };
        void kernel() {
            struct If2 f;
            f.do1();
        }
    """,
    ErrorType.TOP_FUNCTION: "int other() { return 0; }",
}


def run_table1():
    outcomes = {}
    for error_type, source in REPRODUCERS.items():
        unit = parse(source, top_name="kernel")
        report = compile_unit(unit, SolutionConfig(top_name="kernel"))
        outcomes[error_type] = report.errors_of(error_type)
    return outcomes


def test_table1(benchmark):
    outcomes = benchmark.pedantic(run_table1, rounds=1, iterations=1)

    lines = [render_table1(), "", "Symptoms reproduced by the toolchain:"]
    for entry in TAXONOMY:
        diags = outcomes[entry.error_type]
        assert diags, f"no {entry.error_type.value} diagnostic reproduced"
        lines.append(f"  [{entry.error_type.value}] {diags[0]}")
    write_table("table1_taxonomy.txt", "\n".join(lines))

    assert len(outcomes) == len(ErrorType) == 6
