"""Incremental evaluation — content-addressed caches across the pipeline.

Two measurements, both emitted into ``benchmarks/out/BENCH_incremental.json``
(uploaded as a CI artifact and mirrored to the repo root):

1. **per-stage microbench** — a simulated repair chain per subject: clone
   the unit with a dirty-set naming only the kernel, mutate one literal,
   then run the four toolchain stages (style check, HLS compile, schedule
   estimate, interpreter compile).  Timed once with the incremental
   caches on and once with ``REPRO_INCREMENTAL=0``; stage outputs are
   asserted identical along the way, so the speedup is never bought with
   semantic drift.  Per-cache hit/miss counters from
   :func:`analysis_cache_stats` show *where* the time went.
2. **end-to-end Table 3 sweep** — the full ten-subject HeteroGen run at
   default benchmark settings, median of 3 cold-cache rounds, against
   the 70.4 s the sweep cost before the incremental layer.
"""

from __future__ import annotations

import gc
import itertools
import statistics
import time

from repro.baselines import run_variant
from repro.cfront import nodes as N
from repro.cfront.fingerprint import forced_mode
from repro.core.edits.base import Candidate, cloned_unit
from repro.hls.compiler import compile_unit
from repro.hls.memo import analysis_cache_stats, clear_analysis_caches
from repro.hls.schedule import estimate
from repro.hls.stylecheck import check_style
from repro.interp.compile import compile_program
from repro.subjects import all_subjects

from _shared import config_for, write_bench_json, write_table

#: Simulated repair-chain length per subject in the microbench.
CHAIN_LENGTH = 25

#: Chain repetitions per (subject, mode); the reported per-stage time is
#: the repetition minimum.  Single-shot stage timings on a shared host
#: swing by milliseconds (scheduler preemption, GC pauses) — more than
#: the few-millisecond per-stage costs being compared — and the minimum
#: is the standard estimator that filters that additive noise out.
CHAIN_REPS = 5

#: Relative slowdown below which a subject counts as *parity*, not a
#: regression.  Min-of-reps chain totals still wobble by ±1 % on a
#: shared host (measured: ±0.4 ms on 50 ms chains at 15 reps), so a
#: strict ``inc > off`` comparison of equal-cost modes is a coin flip;
#: only a slowdown the measurement can actually resolve is flagged.
REGRESSION_TOLERANCE = 0.02

#: Cold-cache sweep rounds; the reported number is their median.
SWEEP_ROUNDS = 3

#: Wall-clock of the ten-subject sweep before the incremental layer
#: (median of the PR 2 measurement runs).
BASELINE_SWEEP_SECONDS = 70.4

STAGES = ("style", "compile", "schedule", "interp_compile")


def _mutate_kernel(unit, kernel_name):
    """One single-token edit, the shape a repair iteration produces."""
    func = unit.function(kernel_name)
    for node in func.walk():
        if isinstance(node, N.IntLit) and node.value < 2**30:
            node.value += 1
            return
    # No literal to tweak: the chain still exercises clone + re-analysis.


def run_chain(subject, mode):
    """Walk a repair chain under *mode*; returns (timings, observations).

    Each link clones the previous candidate with ``dirty=[kernel]`` and
    mutates one literal in the kernel, so every non-kernel declaration
    keeps its fingerprints — the access pattern of a real repair search,
    where one edit dirties one function and the rest of the unit is
    unchanged.
    """
    # Diagnostics embed node uids; both passes must parse into identical
    # trees for the output comparison to be meaningful.
    N._uid_counter = itertools.count(1)
    # A collection pause landing inside one mode's timed window (clone
    # garbage accumulates across links) would skew a few-ms comparison;
    # collect up front, then keep the collector out of the timings.
    gc.collect()
    gc.disable()
    try:
        return _run_chain_timed(subject, mode)
    finally:
        gc.enable()


def _run_chain_timed(subject, mode):
    with forced_mode(mode):
        clear_analysis_caches()
        unit = subject.parse()
        config = subject.solution
        timings = {stage: 0.0 for stage in STAGES}
        observations = []
        candidate = Candidate(unit=unit, config=config)
        for _ in range(CHAIN_LENGTH):
            child = cloned_unit(candidate, dirty=[subject.kernel])
            _mutate_kernel(child, subject.kernel)
            t0 = time.perf_counter()
            violations = check_style(child)
            t1 = time.perf_counter()
            report = compile_unit(child, config)
            t2 = time.perf_counter()
            schedule = estimate(child, config)
            t3 = time.perf_counter()
            compile_program(child)
            t4 = time.perf_counter()
            timings["style"] += t1 - t0
            timings["compile"] += t2 - t1
            timings["schedule"] += t3 - t2
            timings["interp_compile"] += t4 - t3
            observations.append((
                len(violations),
                [(d.error_type, d.message, d.node_uid) for d in report.diagnostics],
                report.compile_seconds,
                schedule.cycles,
                schedule.resources,
            ))
            candidate = Candidate(unit=child, config=config)
        return timings, observations


def _best_chains(subject):
    """Min-of-:data:`CHAIN_REPS` per-stage timings for both modes.

    Repetitions interleave the modes (on, off, on, off, ...) so slow
    drift on a shared host — frequency scaling, a neighbour waking up —
    biases neither side; the minimum then filters the additive spikes.
    """
    inc_best, inc_obs = run_chain(subject, "on")
    stats = analysis_cache_stats()
    off_best, off_obs = run_chain(subject, "off")
    for _ in range(CHAIN_REPS - 1):
        for mode, best, reference in (
            ("on", inc_best, inc_obs), ("off", off_best, off_obs)
        ):
            timings, obs = run_chain(subject, mode)
            assert obs == reference, (
                f"{subject.id}: chain repetition diverged under mode {mode!r}"
            )
            for stage in STAGES:
                best[stage] = min(best[stage], timings[stage])
    return inc_best, off_best, inc_obs, off_obs, stats


def run_microbench():
    rows = []
    for subject in all_subjects():
        inc_timings, off_timings, inc_obs, off_obs, stats = (
            _best_chains(subject)
        )
        assert inc_obs == off_obs, (
            f"{subject.id}: incremental chain diverged from the legacy path"
        )
        row = {"subject": subject.id}
        for stage in STAGES:
            row[f"{stage}_off_s"] = round(off_timings[stage], 4)
            row[f"{stage}_inc_s"] = round(inc_timings[stage], 4)
        off_total = sum(off_timings.values())
        inc_total = sum(inc_timings.values())
        row["off_total_s"] = round(off_total, 4)
        row["inc_total_s"] = round(inc_total, 4)
        if inc_total > off_total * (1.0 + REGRESSION_TOLERANCE):
            row["verdict"] = "regressed"
        elif off_total > inc_total * (1.0 + REGRESSION_TOLERANCE):
            row["verdict"] = "faster"
        else:
            row["verdict"] = "parity"
        row["cache_stats"] = stats
        rows.append(row)
    return rows


def run_table3_sweep():
    """Median-of-N cold-cache ten-subject sweeps at benchmark settings."""
    times = []
    for _ in range(SWEEP_ROUNDS):
        clear_analysis_caches()
        start = time.perf_counter()
        results = [
            run_variant(subject, "HeteroGen", config_for("HeteroGen"))
            for subject in all_subjects()
        ]
        times.append(time.perf_counter() - start)
        assert all(r.hls_compatible and r.behavior_preserved for r in results)
    return times


def test_incremental_eval(benchmark):
    rows = benchmark.pedantic(run_microbench, rounds=1, iterations=1)
    sweep_times = run_table3_sweep()
    sweep_median = statistics.median(sweep_times)

    stage_totals = {
        stage: {
            "off_s": round(sum(r[f"{stage}_off_s"] for r in rows), 4),
            "incremental_s": round(sum(r[f"{stage}_inc_s"] for r in rows), 4),
        }
        for stage in STAGES
    }
    off_total = sum(r["off_total_s"] for r in rows)
    inc_total = sum(r["inc_total_s"] for r in rows)

    payload = {
        "chain_length": CHAIN_LENGTH,
        "per_stage_microbench": rows,
        "stage_totals": stage_totals,
        "microbench_speedup": round(off_total / inc_total, 2) if inc_total else 0.0,
        "table3_sweep": {
            "rounds_seconds": [round(t, 1) for t in sweep_times],
            "incremental_seconds": round(sweep_median, 1),
            "baseline_seconds": BASELINE_SWEEP_SECONDS,
            "speedup": round(BASELINE_SWEEP_SECONDS / sweep_median, 2),
        },
    }
    write_bench_json("BENCH_incremental.json", payload)

    lines = [
        "Incremental evaluation — content-addressed caches vs full re-analysis",
        f"{'ID':4} {'Off(s)':>8} {'Incr(s)':>8} {'Speedup':>8}  Verdict",
    ]
    for row in rows:
        speedup = (
            row["off_total_s"] / row["inc_total_s"] if row["inc_total_s"] else 0.0
        )
        lines.append(
            f"{row['subject']:4} {row['off_total_s']:8.3f} "
            f"{row['inc_total_s']:8.3f} {speedup:7.2f}x  {row['verdict']}"
        )
    lines.append("")
    lines.append("per-stage totals (all subjects):")
    for stage, totals in stage_totals.items():
        lines.append(
            f"  {stage:15} {totals['off_s']:8.3f}s off   "
            f"{totals['incremental_s']:8.3f}s incremental"
        )
    lines.append("")
    lines.append(
        f"Table 3 sweep: {sweep_median:.1f}s incremental (median of "
        f"{SWEEP_ROUNDS}) vs {BASELINE_SWEEP_SECONDS:.1f}s baseline"
    )
    write_table("bench_incremental.txt", "\n".join(lines))

    assert inc_total < off_total
    assert sweep_median < BASELINE_SWEEP_SECONDS
    # The small-unit memo bypass must hold: no subject — in particular
    # the 2-function ones — may pay a resolvable incremental overhead.
    regressed = [r["subject"] for r in rows if r["verdict"] == "regressed"]
    assert not regressed, f"incremental overhead regression on {regressed}"
