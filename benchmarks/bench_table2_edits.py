"""Table 2 — parameterized edits for each error type.

Renders the edit registry grouped by family, with dependence annotations
(Figure 7c), and checks the registry's structure against the paper:
every family populated, the documented chains in place.
"""

import pytest

from repro.core import build_registry, dependence_graph
from repro.hls.diagnostics import ErrorType

from _shared import write_table


def run_table2():
    registry = build_registry()
    return registry, dependence_graph(registry)


def render(registry, graph):
    lines = ["Table 2 — parameterized edits per error type", ""]
    for error_type in ErrorType:
        edits = registry.edits_for(error_type)
        lines.append(f"{error_type.value}:")
        for edit in edits:
            deps = []
            if edit.requires:
                deps.append("after " + " + ".join(edit.requires))
            if edit.requires_any:
                deps.append("after any of " + " | ".join(edit.requires_any))
            suffix = f"   [{'; '.join(deps)}]" if deps else ""
            lines.append(f"    {edit.signature}{suffix}")
        lines.append("")
    lines.append("Dependence edges (prerequisite -> dependents):")
    for name in sorted(graph):
        if graph[name]:
            lines.append(f"    {name} -> {', '.join(sorted(graph[name]))}")
    return "\n".join(lines)


def test_table2(benchmark):
    registry, graph = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    write_table("table2_edits.txt", render(registry, graph))

    # Every Table 2 row family has edits.
    for error_type in ErrorType:
        assert registry.edits_for(error_type), error_type
    # Table 2's named templates all exist.
    for name in (
        "array_static", "insert", "resize", "stack_trans",
        "pointer", "type_trans", "type_casting", "op_overload",
        "delete", "move", "index_static", "explore", "mem_reset",
        "constructor", "flatten", "stream_static", "inst_static",
        "inst_update",
    ):
        assert registry.edit_named(name) is not None, name
    # Figure 7c's key chains:
    assert "stream_static" in graph["constructor"]
    assert "inst_update" in graph["flatten"]
    assert "resize" in graph["array_static"]
