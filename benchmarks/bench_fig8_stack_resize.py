"""Figure 8 / §6.2 — the stack-resize story.

With only the pre-existing suite, HeteroGen's stack-based recursion
replacement keeps its initial (too small) stack and every existing test
still passes.  With the generated tests, deep inputs overflow the stack,
a large fraction of tests diverge, and the ``resize`` repair is forced —
after which all tests pass.  (Paper: stack 1024 → 44% of generated tests
diverged → 2048; our capacities are scaled to the smaller workloads.)
"""

import pytest

from repro.core.edits import Candidate, RepairContext
from repro.core.edits.dynamic_data import (
    INITIAL_STACK_SIZE,
    ResizeEdit,
    StackTransEdit,
)
from repro.difftest import differential_test
from repro.fuzz import FuzzConfig, fuzz_kernel, get_kernel_seed
from repro.hls import compile_unit
from repro.subjects import get_subject

from _shared import SEED, transpile, write_table


def run_fig8():
    subject = get_subject("P3")
    unit = subject.parse()
    context = RepairContext(kernel_name=subject.kernel)

    # Apply only stack_trans, leaving the initial stack capacity.
    cand = Candidate(unit=unit, config=subject.solution)
    report = compile_unit(cand.unit, cand.config)
    app = StackTransEdit().propose(cand, report.errors, context)[0]
    unresized = app.apply(cand)
    assert compile_unit(unresized.unit, unresized.config).ok

    existing = subject.existing_test_list()
    seeds = get_kernel_seed(
        unit, subject.host, subject.kernel, list(subject.host_args)
    )
    generated = fuzz_kernel(
        unit, subject.kernel,
        FuzzConfig(max_execs=1500, plateau_execs=500, seed=SEED),
        seeds=seeds,
    ).suite(60)

    def pass_ratio(candidate, tests):
        diff = differential_test(
            unit, candidate.unit, subject.kernel, candidate.config, tests
        )
        return diff.pass_ratio

    existing_ratio = pass_ratio(unresized, existing)
    generated_ratio = pass_ratio(unresized, generated)

    resized = unresized
    resizes = 0
    while pass_ratio(resized, generated) < 1.0 and resizes < 6:
        apps = ResizeEdit().propose(resized, [], context)
        stack_app = next(a for a in apps if "_stk" in a.label)
        resized = stack_app.apply(resized)
        resizes += 1
    final_ratio = pass_ratio(resized, generated)
    return existing_ratio, generated_ratio, resizes, final_ratio


def test_fig8(benchmark):
    existing_ratio, generated_ratio, resizes, final_ratio = benchmark.pedantic(
        run_fig8, rounds=1, iterations=1
    )
    text = "\n".join(
        [
            "Figure 8 / §6.2 — stack sizing driven by generated tests",
            f"initial stack capacity          : {INITIAL_STACK_SIZE}",
            f"pass ratio on pre-existing suite: {existing_ratio:.0%}",
            f"pass ratio on generated suite   : {generated_ratio:.0%}",
            f"resize edits forced             : {resizes}",
            f"pass ratio after resizing       : {final_ratio:.0%}",
            "",
            "paper: existing tests all passed at stack=1024; 44% of the",
            "generated tests diverged until the stack was resized to 2048.",
        ]
    )
    write_table("fig8_stack_resize.txt", text)

    # The §6.2 claims, in order:
    assert existing_ratio == 1.0        # weak suite sees nothing wrong
    assert generated_ratio < 1.0        # generated tests expose the bug
    assert resizes >= 1                 # a resize was forced
    assert final_ratio == 1.0           # and it repairs behaviour
