"""Interpreter backends — tree-walker vs closure-compiled engine.

Three measurements, all emitted into ``benchmarks/out/BENCH_interp.json``
(uploaded as a CI artifact):

1. **interpreter loop** — replay each Table 3 subject's fuzz corpus under
   both backends and compare wall-clock; step counts are asserted
   bit-identical along the way, so the speedup is never bought with
   semantic drift.  Target: >= 2x median.
2. **limit enforcement** — the same replay under a tight step budget
   (exercising the hoisted ``ExecLimits`` fast path): per-test steps and
   fault kinds must be identical across backends, proving the hoisting
   changed no behaviour.
3. **end-to-end Table 3 sweep** — one full ten-subject HeteroGen run
   under the compiled default, against the 87.1 s wall-clock the sweep
   cost when the tree-walker was the only engine.
"""

from __future__ import annotations

import statistics
import time

from repro.baselines import run_variant
from repro.errors import InterpError
from repro.fuzz import FuzzConfig, fuzz_kernel
from repro.interp import ExecLimits, make_engine
from repro.subjects import all_subjects

from _shared import SEED, config_for, write_bench_json, write_table

#: Corpus replays per backend when timing the interpreter loop.
REPEATS = 3

#: Wall-clock of the ten-subject sweep when the tree-walker was the only
#: execution engine (median of the PR 1 measurement runs).
TREE_SWEEP_SECONDS = 87.1

LOOSE = ExecLimits(max_steps=120_000, max_depth=128)
TIGHT = ExecLimits(max_steps=500, max_depth=16)


def build_corpora():
    """One deterministic fuzz corpus per subject (built once, replayed
    under every backend/limit combination)."""
    corpora = []
    for subject in all_subjects():
        unit = subject.parse()
        report = fuzz_kernel(
            unit,
            subject.kernel,
            FuzzConfig(max_execs=250, plateau_execs=250, seed=SEED),
            seeds=subject.existing_test_list() or None,
            backend="tree",
        )
        corpora.append((subject, unit, report.suite(40)))
    return corpora


def replay(engine, kernel, suite):
    """Run the suite once; returns per-test (steps, fault-kind) pairs.

    ``engine.steps`` is populated even when a run raises, so the trace is
    comparable between backends on faulting inputs too."""
    trace = []
    for test in suite:
        try:
            engine.run(kernel, test)
            trace.append((engine.steps, ""))
        except InterpError as exc:
            trace.append((engine.steps, type(exc).__name__))
    return trace


def time_backend(unit, kernel, suite, backend, limits):
    engine = make_engine(unit, backend=backend, limits=limits,
                         want_out_args=False)
    trace = replay(engine, kernel, suite)  # warm-up (and the compile)
    start = time.perf_counter()
    for _ in range(REPEATS):
        replay(engine, kernel, suite)
    return time.perf_counter() - start, trace


def run_interp_loop(corpora):
    rows = []
    for subject, unit, suite in corpora:
        tree_s, tree_trace = time_backend(unit, subject.kernel, suite,
                                          "tree", LOOSE)
        comp_s, comp_trace = time_backend(unit, subject.kernel, suite,
                                          "compiled", LOOSE)
        assert tree_trace == comp_trace, (
            f"{subject.id}: backends diverged on the fuzz corpus"
        )
        rows.append({
            "subject": subject.id,
            "tests": len(suite),
            "tree_seconds": round(tree_s, 4),
            "compiled_seconds": round(comp_s, 4),
            "speedup": round(tree_s / comp_s, 2) if comp_s else 0.0,
        })
    return rows


def run_limit_microbench(corpora):
    """Tight-budget replay: the hoisted-limits fast path must preserve
    every observable (steps at abort, fault kind) across backends."""
    rows = []
    for subject, unit, suite in corpora:
        tree_s, tree_trace = time_backend(unit, subject.kernel, suite,
                                          "tree", TIGHT)
        comp_s, comp_trace = time_backend(unit, subject.kernel, suite,
                                          "compiled", TIGHT)
        assert tree_trace == comp_trace, (
            f"{subject.id}: limit enforcement diverged under a tight budget"
        )
        rows.append({
            "subject": subject.id,
            "aborted_tests": sum(1 for _s, kind in comp_trace if kind),
            "tree_seconds": round(tree_s, 4),
            "compiled_seconds": round(comp_s, 4),
        })
    return rows


def run_table3_sweep():
    start = time.perf_counter()
    results = [
        run_variant(subject, "HeteroGen", config_for("HeteroGen"))
        for subject in all_subjects()
    ]
    elapsed = time.perf_counter() - start
    assert all(r.hls_compatible and r.behavior_preserved for r in results)
    return elapsed


def test_interp_backend(benchmark):
    corpora = build_corpora()
    loop_rows = benchmark.pedantic(
        run_interp_loop, args=(corpora,), rounds=1, iterations=1
    )
    limit_rows = run_limit_microbench(corpora)
    sweep_seconds = run_table3_sweep()

    median_speedup = statistics.median(r["speedup"] for r in loop_rows)
    payload = {
        "repeats": REPEATS,
        "interpreter_loop": loop_rows,
        "median_speedup": median_speedup,
        "limit_enforcement": limit_rows,
        "table3_sweep": {
            "compiled_seconds": round(sweep_seconds, 1),
            "tree_baseline_seconds": TREE_SWEEP_SECONDS,
            "speedup": round(TREE_SWEEP_SECONDS / sweep_seconds, 2),
        },
    }
    write_bench_json("BENCH_interp.json", payload)

    lines = [
        "Interpreter backends — closure-compiled vs tree-walking",
        f"{'ID':4} {'Tests':>5} {'Tree(s)':>8} {'Compiled(s)':>12} {'Speedup':>8}",
    ]
    for row in loop_rows:
        lines.append(
            f"{row['subject']:4} {row['tests']:5} {row['tree_seconds']:8.3f} "
            f"{row['compiled_seconds']:12.3f} {row['speedup']:7.2f}x"
        )
    lines.append("")
    lines.append(f"median interpreter-loop speedup: {median_speedup:.2f}x "
                 f"(target: >= 2x)")
    lines.append(
        f"Table 3 sweep: {sweep_seconds:.1f}s compiled vs "
        f"{TREE_SWEEP_SECONDS:.1f}s tree baseline"
    )
    write_table("bench_interp.txt", "\n".join(lines))

    assert median_speedup >= 2.0
    assert sweep_seconds < TREE_SWEEP_SECONDS
