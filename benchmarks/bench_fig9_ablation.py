"""Figure 9 — repair time and HLS invocations, ablated.

Per subject: simulated repair wall-clock for HeteroGen vs
WithoutDependence (dependence-blind random search, 12-hour cap), and the
fraction of repair attempts that reached a full HLS compilation for
HeteroGen vs WithoutChecker (which always compiles).

Paper's shape: dependence guidance is up to 35× faster (and
WithoutDependence fails outright on P9 within 12 hours); the style
checker avoids a large share of HLS invocations (4× speedup on P3).
"""

import pytest

from repro.subjects import all_subjects

from _shared import transpile, write_table

#: WithoutDependence is benchmarked on every subject, as in the paper.
VARIANTS = ("HeteroGen", "WithoutChecker", "WithoutDependence")


def run_fig9():
    rows = []
    for subject in all_subjects():
        per_variant = {v: transpile(subject.id, v) for v in VARIANTS}
        rows.append((subject, per_variant))
    return rows


def render(rows):
    header = (
        f"{'ID':4} {'HG(min)':>9} {'NoDep(min)':>11} {'slowdown':>9} "
        f"{'HG HLS%':>8} {'NoChk HLS%':>11} {'NoDep ok':>9}"
    )
    lines = ["Figure 9 — ablation of the two search optimizations", header,
             "-" * len(header)]
    for subject, per in rows:
        hg = per["HeteroGen"]
        nodep = per["WithoutDependence"]
        nochk = per["WithoutChecker"]
        hg_min = hg.search_result.repair_minutes
        nodep_min = nodep.search_result.repair_minutes
        slowdown = nodep_min / hg_min if hg_min else float("inf")
        lines.append(
            f"{subject.id:4} {hg_min:9.1f} {nodep_min:11.1f} {slowdown:8.1f}x "
            f"{hg.search_result.stats.hls_invocation_ratio:8.0%} "
            f"{nochk.search_result.stats.hls_invocation_ratio:11.0%} "
            f"{'yes' if nodep.success else 'NO':>9}"
        )
    lines.append("")
    lines.append(
        "paper: WithoutDependence up to 35x slower (fails on P9 in 12h); "
        "the checker lets HeteroGen skip a large share of HLS invocations."
    )
    return "\n".join(lines)


def test_fig9(benchmark):
    rows = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    write_table("fig9_ablation.txt", render(rows))

    slowdowns = []
    for subject, per in rows:
        hg = per["HeteroGen"]
        nochk = per["WithoutChecker"]
        nodep = per["WithoutDependence"]
        assert hg.success, subject.id
        assert nochk.success, subject.id
        # WithoutChecker compiles every attempt; HeteroGen skips some.
        assert nochk.search_result.stats.hls_invocation_ratio == 1.0
        assert (
            hg.search_result.stats.hls_invocation_ratio
            <= nochk.search_result.stats.hls_invocation_ratio
        )
        if hg.search_result.repair_minutes:
            slowdowns.append(
                nodep.search_result.repair_minutes
                / hg.search_result.repair_minutes
            )
    # The paper's Figure 9 claims are aggregate, and a random explorer can
    # get lucky on single-edit subjects:
    # 1. dependence-blind search is substantially slower in the worst
    #    case ("up to 35x");
    assert max(slowdowns) > 5.0
    # 2. ...and slower or tied on most subjects (10% tolerance for ties);
    slower_or_tied = sum(1 for s in slowdowns if s >= 0.9)
    assert slower_or_tied >= 6, slowdowns
    # 3. ...and does not transpile every subject inside 12 hours (the
    #    paper's P9 failure).
    assert any(not per["WithoutDependence"].success for _s, per in rows)
    # 4. The style checker saves HLS invocations on most subjects.
    saved = [
        1 - per["HeteroGen"].search_result.stats.hls_invocation_ratio
        for _s, per in rows
    ]
    assert max(saved) > 0.1
    assert sum(1 for s in saved if s > 0.1) >= 6
