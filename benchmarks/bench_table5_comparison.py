"""Table 5 — comparison against manual ports and HeteroRefactor.

Per subject: code-edit size (ΔLOC) and runtime for the human-written HLS
port, the HeteroRefactor baseline, and HeteroGen.

Paper's shape: HR transpiles only P3 and P8 (20% vs 100% success);
manual ports are fastest (2.43× mean), HeteroGen close behind (1.63×),
and on the HR-transpilable subjects HR's output is slower than
HeteroGen's (no performance exploration).
"""

import pytest

from repro.cfront import added_loc, count_loc
from repro.difftest import differential_test
from repro.interp import ExecLimits
from repro.subjects import all_subjects

from _shared import transpile, write_table

LIMITS = ExecLimits(max_steps=400_000)


def manual_runtime_ms(subject, tests):
    unit = subject.parse()
    manual = subject.parse_manual()
    solution = subject.manual_solution or subject.solution
    diff = differential_test(
        unit, manual, subject.kernel, solution, tests, limits=LIMITS
    )
    return diff, added_loc(unit, manual)


def run_table5():
    rows = []
    for subject in all_subjects():
        hg = transpile(subject.id, "HeteroGen")
        hr = transpile(subject.id, "HeteroRefactor")
        tests = hg.fuzz_report.suite(40) if hg.fuzz_report else []
        manual_diff, manual_dloc = manual_runtime_ms(subject, tests)
        rows.append((subject, hg, hr, manual_diff, manual_dloc))
    return rows


def render(rows):
    header = (
        f"{'ID':4} {'LOC':>5} | {'dLOC man':>8} {'dLOC HR':>8} {'dLOC HG':>8} | "
        f"{'origin ms':>9} {'manual ms':>9} {'HR ms':>8} {'HG ms':>8}"
    )
    lines = ["Table 5 — manual vs HeteroRefactor vs HeteroGen", header,
             "-" * len(header)]
    hr_success = 0
    for subject, hg, hr, manual_diff, manual_dloc in rows:
        hr_ok = hr.success
        hr_success += hr_ok
        hr_dloc = str(hr.delta_loc) if hr_ok else "x"
        hr_ms = f"{hr.converted_runtime_ms:8.4f}" if hr_ok else "       x"
        lines.append(
            f"{subject.id:4} {count_loc(subject.parse()):5} | "
            f"{manual_dloc:8} {hr_dloc:>8} {hg.delta_loc:8} | "
            f"{hg.origin_runtime_ms:9.4f} "
            f"{manual_diff.fpga_latency_ns / 1e6:9.4f} {hr_ms} "
            f"{hg.converted_runtime_ms:8.4f}"
        )
    lines.append("")
    lines.append(
        f"HeteroRefactor transpiles {hr_success}/10 "
        f"(paper: 2/10 = 20% vs HeteroGen 100%)"
    )
    return "\n".join(lines)


def test_table5(benchmark):
    rows = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    write_table("table5_comparison.txt", render(rows))

    hr_successes = {s.id for s, _hg, hr, _m, _d in rows if hr.success}
    # HeteroRefactor's scope: exactly the dynamic-data-structure subjects.
    assert hr_successes == {"P3", "P8"}

    for subject, hg, hr, manual_diff, _dloc in rows:
        assert hg.success, subject.id
        # Manual ports preserve behaviour too.
        assert manual_diff.behavior_preserved, subject.id
        if hr.success:
            # HR's output is never faster than HeteroGen's (§6.4: 1.53x
            # slower on P3/P8 — HR does no performance exploration).
            assert (
                hr.converted_runtime_ms >= hg.converted_runtime_ms * 0.999
            ), subject.id

    # Mean speedups: manual >= HeteroGen > 1 (excluding loop-free P1).
    manual_speedups = []
    hg_speedups = []
    for subject, hg, _hr, manual_diff, _d in rows:
        if subject.id == "P1":
            continue
        manual_speedups.append(manual_diff.speedup)
        hg_speedups.append(hg.speedup)
    mean_manual = sum(manual_speedups) / len(manual_speedups)
    mean_hg = sum(hg_speedups) / len(hg_speedups)
    assert mean_hg > 1.0
    assert mean_manual > 1.0
